//! Datasets: ordered collections of variables in one file, plus the
//! PnetCDF-style collective read entry point.

use cc_mpi::Comm;
use cc_mpiio::{collective_read, collective_write, Hints, TwoPhaseReport, WriteReport};
use cc_pfs::{FileHandle, Pfs};

use crate::dtype::DType;
use crate::hyperslab::Hyperslab;
use crate::shape::Shape;
use crate::variable::Variable;

/// A self-describing file layout: variables packed back to back after a
/// fixed-size header, netCDF classic style.
#[derive(Debug, Clone, Default)]
pub struct Dataset {
    vars: Vec<Variable>,
    header_bytes: u64,
}

impl Dataset {
    /// An empty dataset with no header.
    pub fn new() -> Self {
        Self::default()
    }

    /// An empty dataset reserving `header_bytes` before the first variable.
    pub fn with_header(header_bytes: u64) -> Self {
        Self {
            vars: Vec::new(),
            header_bytes,
        }
    }

    /// Appends a variable after the existing ones; returns its index.
    ///
    /// # Panics
    /// Panics on a duplicate name.
    pub fn add_var(&mut self, name: &str, shape: Shape, dtype: DType) -> usize {
        assert!(
            self.vars.iter().all(|v| v.name() != name),
            "duplicate variable '{name}'"
        );
        let base = self
            .vars
            .last()
            .map_or(self.header_bytes, Variable::end_offset);
        self.vars.push(Variable::new(name, shape, dtype, base));
        self.vars.len() - 1
    }

    /// Looks a variable up by name.
    pub fn var(&self, name: &str) -> Option<&Variable> {
        self.vars.iter().find(|v| v.name() == name)
    }

    /// All variables in file order.
    pub fn vars(&self) -> &[Variable] {
        &self.vars
    }

    /// Total file size in bytes (header plus all variables).
    pub fn total_bytes(&self) -> u64 {
        self.vars
            .last()
            .map_or(self.header_bytes, Variable::end_offset)
    }
}

/// The `ncmpi_get_vara_*_all` analogue: collectively reads `slab` of `var`
/// through the two-phase engine and decodes to `f64`. Must be called by all
/// ranks; each rank passes its own selection.
pub fn get_vara_all(
    comm: &mut Comm,
    pfs: &Pfs,
    file: &FileHandle,
    var: &Variable,
    slab: &Hyperslab,
    hints: &Hints,
) -> (Vec<f64>, TwoPhaseReport) {
    let request = var.byte_extents(slab);
    let (bytes, report) = collective_read(comm, pfs, file, &request, hints);
    (var.dtype().decode(&bytes), report)
}

/// The `ncmpi_put_vara_*_all` analogue: collectively writes `values` into
/// `slab` of `var` through the two-phase write engine. Must be called by
/// all ranks; each rank passes its own selection and values (in row-major
/// selection order).
///
/// # Panics
/// Panics if `values.len()` does not match the selection size.
pub fn put_vara_all(
    comm: &mut Comm,
    pfs: &Pfs,
    file: &FileHandle,
    var: &Variable,
    slab: &Hyperslab,
    values: &[f64],
    hints: &Hints,
) -> WriteReport {
    assert_eq!(
        values.len() as u64,
        slab.num_elements(),
        "value buffer does not match the selection size"
    );
    let request = var.byte_extents(slab);
    let bytes = var.dtype().encode(values);
    collective_write(comm, pfs, file, &request, &bytes, hints)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cc_model::{ClusterModel, Topology};
    use cc_mpi::World;
    use cc_pfs::backend::ElemKind;
    use cc_pfs::{StripeLayout, SyntheticBackend};
    use std::sync::Arc;

    #[test]
    fn variables_pack_back_to_back() {
        let mut ds = Dataset::with_header(128);
        ds.add_var("a", Shape::new(vec![10]), DType::F64);
        ds.add_var("b", Shape::new(vec![4, 4]), DType::F32);
        let a = ds.var("a").expect("a exists");
        let b = ds.var("b").expect("b exists");
        assert_eq!(a.base_offset(), 128);
        assert_eq!(b.base_offset(), 128 + 80);
        assert_eq!(ds.total_bytes(), 128 + 80 + 64);
        assert!(ds.var("missing").is_none());
    }

    #[test]
    #[should_panic]
    fn duplicate_name_panics() {
        let mut ds = Dataset::new();
        ds.add_var("x", Shape::new(vec![1]), DType::F32);
        ds.add_var("x", Shape::new(vec![1]), DType::F32);
    }

    #[test]
    fn put_then_get_vara_roundtrip() {
        // Collectively write a checkerboard selection, then read it back.
        let shape = Shape::new(vec![8, 10]);
        let mut ds = Dataset::new();
        ds.add_var("t", shape.clone(), DType::F64);
        let fs = Pfs::new(
            2,
            cc_model::DiskModel {
                seek: 1e-3,
                ost_bandwidth: 1e8,
            },
        );
        fs.create(
            "d",
            StripeLayout::round_robin(64, 2, 0, 2),
            Box::new(cc_pfs::MemBackend::zeroed(640)),
        );
        let fs = Arc::new(fs);
        let mut model = ClusterModel::test_tiny(4);
        model.topology = Topology::new(2, 2);
        let world = World::new(4, model);
        let ds = &ds;
        let fs = &fs;
        let ok = world.run(move |comm| {
            let file = fs.open("d").expect("exists");
            let var = ds.var("t").expect("t exists");
            let slab = Hyperslab::new(vec![2 * comm.rank() as u64, 3], vec![2, 4]);
            // Values are a function of rank and position.
            let values: Vec<f64> = (0..8).map(|k| (comm.rank() * 100 + k) as f64).collect();
            put_vara_all(comm, fs, &file, var, &slab, &values, &Hints::default());
            comm.barrier();
            let (back, _) = get_vara_all(comm, fs, &file, var, &slab, &Hints::default());
            back == values
        });
        assert!(ok.iter().all(|&b| b));
    }

    #[test]
    fn get_vara_all_reads_correct_values() {
        // One f64 variable whose value equals its element index.
        let shape = Shape::new(vec![8, 10]);
        let mut ds = Dataset::new();
        ds.add_var("t", shape.clone(), DType::F64);
        let fs = Pfs::new(
            2,
            cc_model::DiskModel {
                seek: 1e-3,
                ost_bandwidth: 1e8,
            },
        );
        fs.create(
            "d",
            StripeLayout::round_robin(64, 2, 0, 2),
            Box::new(SyntheticBackend::new(80, ElemKind::F64, |i: u64| i as f64)),
        );
        let fs = Arc::new(fs);

        let mut model = ClusterModel::test_tiny(4);
        model.topology = Topology::new(2, 2);
        let world = World::new(4, model);
        let ds = &ds;
        let fs = &fs;
        let results = world.run(move |comm| {
            let file = fs.open("d").expect("exists");
            let var = ds.var("t").expect("t exists");
            // Rank r reads rows 2r..2r+2, columns 3..7.
            let slab = Hyperslab::new(vec![2 * comm.rank() as u64, 3], vec![2, 4]);
            get_vara_all(comm, fs, &file, var, &slab, &Hints::default()).0
        });
        for (r, values) in results.iter().enumerate() {
            let mut expect = Vec::new();
            for row in (2 * r as u64)..(2 * r as u64 + 2) {
                for col in 3..7u64 {
                    expect.push((row * 10 + col) as f64);
                }
            }
            assert_eq!(values, &expect, "rank {r}");
        }
    }
}
