//! The "logical map": reconstructing logical subsets from byte ranges.
//!
//! This is the construction step of the paper's Fig. 8. Inside the
//! collective, an aggregated chunk is "just a sequence of bytes, with no
//! self-describing metadata"; before a map kernel can run, the bytes a
//! requester asked for must be recognized as element runs with coordinates
//! in the original dataset. Given a requester's offset list and a chunk's
//! byte range, [`construct_runs`] produces those runs.

use cc_mpiio::OffsetList;

use crate::variable::Variable;

/// One contiguous run of a requester's selection inside a chunk: the unit a
/// map kernel processes, and the unit whose metadata (owner, coordinates)
/// the collective-computing runtime must carry (the storage overhead
/// measured in the paper's Fig. 12).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LogicalRun {
    /// Linear element index (in the variable) where the run starts.
    pub start_elem: u64,
    /// Length in elements.
    pub len: u64,
    /// Element offset of the run within the requester's flattened result
    /// buffer (for reassembly and for positional kernels).
    pub buf_elem_offset: u64,
}

impl LogicalRun {
    /// The run's starting coordinates in `var`'s shape — the
    /// `sequence = {(start0, len0, start1, len1), ...}` form of the paper.
    pub fn start_coords(&self, var: &Variable) -> Vec<u64> {
        var.shape().coords_of(self.start_elem)
    }

    /// Size of this run's metadata record in bytes, as the paper's runtime
    /// would store it: owner rank + buffer position + one (start, length)
    /// pair per dimension boundary, dominated by the coordinate vector.
    pub fn metadata_bytes(&self, var: &Variable) -> u64 {
        // owner (8) + buf offset (8) + len (8) + rank coordinates (8 each)
        24 + 8 * var.shape().rank() as u64
    }
}

/// Reconstructs the logical runs of `request` (a requester's byte-level
/// offset list over `var`) that fall inside the chunk `[lo, hi)`.
///
/// # Panics
/// Panics if the intersection splits an element — callers must align chunk
/// boundaries to the element size (the collective-computing engine plans
/// element-aligned domains for exactly this reason).
pub fn construct_runs(var: &Variable, request: &OffsetList, lo: u64, hi: u64) -> Vec<LogicalRun> {
    let esize = var.dtype().size();
    request
        .locate(lo, hi)
        .into_iter()
        .map(|p| {
            assert!(
                (p.extent.offset - var.base_offset()).is_multiple_of(esize) && p.extent.len % esize == 0,
                "chunk boundary splits a {esize}-byte element of '{}' at byte {}",
                var.name(),
                p.extent.offset
            );
            assert!(
                p.buf_offset % esize == 0,
                "buffer position splits an element"
            );
            LogicalRun {
                start_elem: var.elem_of_byte(p.extent.offset),
                len: p.extent.len / esize,
                buf_elem_offset: p.buf_offset / esize,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dtype::DType;
    use crate::hyperslab::Hyperslab;
    use crate::shape::Shape;
    use proptest::prelude::*;

    fn var() -> Variable {
        Variable::new("t", Shape::new(vec![4, 6]), DType::F64, 64)
    }

    #[test]
    fn whole_request_in_one_chunk() {
        let v = var();
        let slab = Hyperslab::new(vec![1, 2], vec![2, 3]);
        let req = v.byte_extents(&slab);
        let runs = construct_runs(&v, &req, 0, 1 << 20);
        assert_eq!(runs.len(), 2);
        assert_eq!(runs[0].start_coords(&v), vec![1, 2]);
        assert_eq!(runs[0].len, 3);
        assert_eq!(runs[0].buf_elem_offset, 0);
        assert_eq!(runs[1].start_coords(&v), vec![2, 2]);
        assert_eq!(runs[1].buf_elem_offset, 3);
    }

    #[test]
    fn chunk_boundary_splits_runs_not_elements() {
        let v = var();
        let slab = Hyperslab::new(vec![0, 0], vec![1, 6]); // row 0: 48 bytes at 64
        let req = v.byte_extents(&slab);
        // Split the row at byte 88 (element-aligned: 64 + 3*8).
        let first = construct_runs(&v, &req, 0, 88);
        let second = construct_runs(&v, &req, 88, 1 << 20);
        assert_eq!(first.len(), 1);
        assert_eq!(first[0].len, 3);
        assert_eq!(second[0].len, 3);
        assert_eq!(second[0].start_coords(&v), vec![0, 3]);
        assert_eq!(second[0].buf_elem_offset, 3);
    }

    #[test]
    #[should_panic]
    fn unaligned_chunk_panics() {
        let v = var();
        let req = v.byte_extents(&Hyperslab::whole(v.shape()));
        let _ = construct_runs(&v, &req, 0, 67); // splits an element
    }

    #[test]
    fn empty_intersection_is_empty() {
        let v = var();
        let req = v.byte_extents(&Hyperslab::new(vec![0, 0], vec![1, 2]));
        assert!(construct_runs(&v, &req, 1 << 10, 1 << 11).is_empty());
    }

    #[test]
    fn metadata_size_scales_with_rank() {
        let v2 = var();
        let v4 = Variable::new("q", Shape::new(vec![2, 2, 2, 2]), DType::F32, 0);
        let run = LogicalRun {
            start_elem: 0,
            len: 1,
            buf_elem_offset: 0,
        };
        assert_eq!(run.metadata_bytes(&v2), 24 + 16);
        assert_eq!(run.metadata_bytes(&v4), 24 + 32);
    }

    proptest! {
        #[test]
        fn prop_runs_cover_request_once(
            split_points in proptest::collection::vec(0u64..200, 0..6),
        ) {
            // Chop the variable's byte span at arbitrary element-aligned
            // points; the runs from all chunks must tile the selection.
            let v = var();
            let slab = Hyperslab::new(vec![1, 1], vec![3, 4]);
            let req = v.byte_extents(&slab);
            let mut cuts: Vec<u64> = split_points
                .into_iter()
                .map(|c| v.base_offset() + (c % (v.size_bytes() / 8)) * 8)
                .collect();
            cuts.push(v.base_offset());
            cuts.push(v.end_offset());
            cuts.sort_unstable();
            cuts.dedup();
            let mut elems = Vec::new();
            for w in cuts.windows(2) {
                for r in construct_runs(&v, &req, w[0], w[1]) {
                    elems.extend(r.start_elem..r.start_elem + r.len);
                }
            }
            elems.sort_unstable();
            let expected: Vec<u64> = (0..v.shape().num_elements())
                .filter(|&i| slab.contains(&v.shape().coords_of(i)))
                .collect();
            prop_assert_eq!(elems, expected);
        }
    }
}
