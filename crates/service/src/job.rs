//! Job descriptions and results for the multi-job collective service.

use std::fmt;
use std::sync::Arc;

use cc_array::Variable;
use cc_core::{MapKernel, ObjectIo};
use cc_model::SimTime;
use cc_mpiio::{Hints, PlanCacheStats};

/// Quality-of-service class of a job.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum QosClass {
    /// Latency-sensitive: stepped ahead of every batch job at iteration
    /// boundaries, so its OST and backbone bookings land first where the
    /// demand windows overlap.
    Interactive,
    /// Throughput-oriented background work, scheduled by weighted fair
    /// queueing over attributed OST busy-time.
    #[default]
    Batch,
}

/// One step of a job's sweep: a global hyperslab the service partitions
/// row-wise (dimension 0) across the job's ranks. Every rank must get at
/// least one row, so `count[0] >= nprocs` is checked at admission.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StepSpec {
    /// Per-dimension selection start of the whole step.
    pub start: Vec<u64>,
    /// Per-dimension selection count of the whole step.
    pub count: Vec<u64>,
}

/// A job submitted to the service: which file and variable to sweep, how
/// many ranks to run on, when it arrives, its QoS class and fair-share
/// weight, and the kernel folded over the sweep.
#[derive(Clone)]
pub struct JobSpec {
    /// Display name (also carried into the result).
    pub name: String,
    /// Name of the file in the service's shared file system.
    pub file: String,
    /// The variable swept.
    pub var: Variable,
    /// Ranks this job runs on; the service carves
    /// `ceil(nprocs / cores_per_node)` whole nodes out of the cluster.
    pub nprocs: usize,
    /// Virtual arrival time; the job never starts earlier.
    pub arrival: SimTime,
    /// QoS class.
    pub class: QosClass,
    /// Weighted-fair-queueing weight (batch jobs; must be positive).
    pub weight: f64,
    /// Engine hints applied to every step.
    pub hints: Hints,
    /// The kernel applied inside the collective and folded across steps.
    pub kernel: Arc<dyn MapKernel>,
    /// The sweep, one global hyperslab per step.
    pub steps: Vec<StepSpec>,
}

impl fmt::Debug for JobSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("JobSpec")
            .field("name", &self.name)
            .field("file", &self.file)
            .field("nprocs", &self.nprocs)
            .field("arrival", &self.arrival)
            .field("class", &self.class)
            .field("weight", &self.weight)
            .field("steps", &self.steps.len())
            .finish_non_exhaustive()
    }
}

impl JobSpec {
    /// A batch job arriving at time zero with weight 1 and default hints;
    /// add steps with [`step`](Self::step).
    pub fn new(
        name: impl Into<String>,
        file: impl Into<String>,
        var: Variable,
        nprocs: usize,
        kernel: Arc<dyn MapKernel>,
    ) -> Self {
        Self {
            name: name.into(),
            file: file.into(),
            var,
            nprocs,
            arrival: SimTime::ZERO,
            class: QosClass::Batch,
            weight: 1.0,
            hints: Hints::default(),
            kernel,
            steps: Vec::new(),
        }
    }

    /// Appends one sweep step.
    pub fn step(mut self, start: Vec<u64>, count: Vec<u64>) -> Self {
        self.steps.push(StepSpec { start, count });
        self
    }

    /// Sets the arrival time.
    pub fn arrival(mut self, at: SimTime) -> Self {
        self.arrival = at;
        self
    }

    /// Sets the QoS class.
    pub fn class(mut self, class: QosClass) -> Self {
        self.class = class;
        self
    }

    /// Sets the fair-share weight.
    pub fn weight(mut self, weight: f64) -> Self {
        self.weight = weight;
        self
    }

    /// Sets the engine hints applied to every step.
    pub fn hints(mut self, hints: Hints) -> Self {
        self.hints = hints;
        self
    }

    /// The per-rank selection of `rank` within step `step`: an even
    /// row-partition of dimension 0 (first `rows % nprocs` ranks take one
    /// extra row). Identical in concurrent and solo runs, which is what
    /// makes their results bit-comparable.
    pub fn rank_io(&self, step: &StepSpec, rank: usize, nprocs: usize) -> ObjectIo {
        let rows = step.count[0];
        let n = nprocs as u64;
        let r = rank as u64;
        let base = rows / n;
        let extra = rows % n;
        let mine = base + u64::from(r < extra);
        let before = r * base + r.min(extra);
        let mut start = step.start.clone();
        let mut count = step.count.clone();
        start[0] += before;
        count[0] = mine;
        ObjectIo::new(start, count).hints(self.hints.clone())
    }
}

/// Why a [`JobSpec`] was refused at submission.
#[derive(Debug, Clone, PartialEq)]
pub enum AdmissionError {
    /// `nprocs` was zero.
    ZeroRanks,
    /// The job had no steps.
    NoSteps,
    /// The job needs more nodes than the cluster has.
    TooLarge {
        /// Whole nodes the job needs.
        needed_nodes: usize,
        /// Nodes in the cluster.
        cluster_nodes: usize,
    },
    /// The named file does not exist in the service's file system.
    UnknownFile(String),
    /// A step has fewer rows than the job has ranks, so the row partition
    /// would leave a rank with an empty (invalid) selection.
    StepTooNarrow {
        /// Index of the offending step.
        step: usize,
        /// Its row count.
        rows: u64,
        /// The job's rank count.
        nprocs: usize,
    },
    /// The fair-share weight was not a positive finite number.
    BadWeight(f64),
}

impl fmt::Display for AdmissionError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AdmissionError::ZeroRanks => write!(f, "job requested zero ranks"),
            AdmissionError::NoSteps => write!(f, "job has no steps"),
            AdmissionError::TooLarge {
                needed_nodes,
                cluster_nodes,
            } => write!(
                f,
                "job needs {needed_nodes} nodes but the cluster has {cluster_nodes}"
            ),
            AdmissionError::UnknownFile(name) => {
                write!(f, "file {name:?} does not exist in the service file system")
            }
            AdmissionError::StepTooNarrow { step, rows, nprocs } => write!(
                f,
                "step {step} has {rows} rows, fewer than the job's {nprocs} ranks"
            ),
            AdmissionError::BadWeight(w) => write!(f, "fair-share weight {w} is not positive"),
        }
    }
}

impl std::error::Error for AdmissionError {}

/// Ticket returned by a successful submission; indexes the job's
/// [`JobResult`] in the service outcome.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct JobHandle {
    /// The job's id: its position in the outcome's result list.
    pub id: u64,
}

/// What one job produced and experienced.
#[derive(Debug, Clone)]
pub struct JobResult {
    /// The job's id (submit order).
    pub id: u64,
    /// The spec's display name.
    pub name: String,
    /// QoS class the job ran under.
    pub class: QosClass,
    /// Virtual arrival time (from the spec).
    pub submitted: SimTime,
    /// Virtual time the job was placed and began its first step.
    pub started: SimTime,
    /// Virtual completion time of its last step.
    pub finished: SimTime,
    /// The finalized fold of all steps' globals (at the reduce root).
    pub global: Option<Vec<f64>>,
    /// Each step's own finalized global, in step order.
    pub per_step: Option<Vec<Vec<f64>>>,
    /// Steps executed.
    pub steps: usize,
    /// Plan-cache counters summed over the job's ranks and steps; in a
    /// shared-cache run the `cross_job_*` fields say how often this job
    /// rode on schedules other jobs compiled.
    pub plan_cache: PlanCacheStats,
    /// OST busy-seconds attributed to this job (service booked by the
    /// file system while this job's steps executed).
    pub ost_busy_secs: f64,
    /// Inter-node bytes this job pushed over the shared backbone lane
    /// (0 when the service runs without one).
    pub lane_bytes: u64,
}

impl JobResult {
    /// Virtual time from arrival to completion — the job's latency as its
    /// submitter experienced it, queueing included.
    pub fn latency(&self) -> SimTime {
        self.finished.saturating_since(self.submitted)
    }

    /// FNV-1a fingerprint of the job's numeric results (`global` and
    /// `per_step`, bit patterns of every f64). Two runs of the same job —
    /// solo, serial, or against any mix of concurrent neighbours — must
    /// produce identical checksums: scheduling changes timing, never data.
    pub fn checksum(&self) -> u64 {
        let mut h = 0xcbf29ce484222325u64;
        let mut eat = |x: u64| {
            for b in x.to_le_bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x100000001b3);
            }
        };
        if let Some(g) = &self.global {
            eat(g.len() as u64);
            for v in g {
                eat(v.to_bits());
            }
        }
        if let Some(steps) = &self.per_step {
            eat(steps.len() as u64);
            for s in steps {
                eat(s.len() as u64);
                for v in s {
                    eat(v.to_bits());
                }
            }
        }
        h
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cc_array::{DType, Shape};
    use cc_core::SumKernel;

    fn spec(nprocs: usize) -> JobSpec {
        let var = Variable::new("v", Shape::new(vec![16, 8]), DType::F64, 0);
        JobSpec::new("j", "f", var, nprocs, Arc::new(SumKernel)).step(vec![0, 0], vec![16, 8])
    }

    #[test]
    fn rank_io_partitions_rows_exactly() {
        let s = spec(3);
        let step = s.steps[0].clone();
        let ios: Vec<ObjectIo> = (0..3).map(|r| s.rank_io(&step, r, 3)).collect();
        // 16 rows over 3 ranks: 6, 5, 5 — contiguous and complete.
        assert_eq!(ios[0].start[0], 0);
        assert_eq!(ios[0].count[0], 6);
        assert_eq!(ios[1].start[0], 6);
        assert_eq!(ios[1].count[0], 5);
        assert_eq!(ios[2].start[0], 11);
        assert_eq!(ios[2].count[0], 5);
        let total: u64 = ios.iter().map(|io| io.count[0]).sum();
        assert_eq!(total, 16);
    }

    #[test]
    fn checksum_tracks_results_only() {
        let mk = |finished| JobResult {
            id: 0,
            name: "j".into(),
            class: QosClass::Batch,
            submitted: SimTime::ZERO,
            started: SimTime::ZERO,
            finished,
            global: Some(vec![1.5, -2.0]),
            per_step: Some(vec![vec![1.0], vec![0.5]]),
            steps: 2,
            plan_cache: PlanCacheStats::default(),
            ost_busy_secs: 0.0,
            lane_bytes: 0,
        };
        // Timing differs, data identical: checksums match.
        let a = mk(SimTime::from_secs(1.0));
        let b = mk(SimTime::from_secs(99.0));
        assert_eq!(a.checksum(), b.checksum());
        // Data differs: checksums split.
        let mut c = mk(SimTime::from_secs(1.0));
        c.global = Some(vec![1.5, -2.5]);
        assert_ne!(a.checksum(), c.checksum());
    }
}
