//! The multi-job scheduler: admission, placement, fair queueing, and the
//! virtual-time event loop.

use std::sync::Arc;

use cc_core::{iterative_get_vara, object_get_vara_planned, Partial};
use cc_model::{ClusterModel, LaneStats, SharedLane, SimTime, Topology};
use cc_mpi::World;
use cc_mpiio::{PlanCacheStats, PlanSource, SharedPlanCache};
use cc_pfs::{OstSnapshot, Pfs};

use crate::job::{AdmissionError, JobHandle, JobResult, JobSpec, QosClass};

/// How the service picks the next job to step at an iteration boundary.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ServicePolicy {
    /// Interactive jobs always step before batch jobs (earliest job clock
    /// first among them); batch jobs are weighted-fair-queued by
    /// attributed OST busy-seconds over their weight. The default.
    #[default]
    QosWfq,
    /// Jobs step in admission order, each to completion, regardless of
    /// class (head-of-line blocking included — the baseline a QoS policy
    /// is judged against).
    Fifo,
    /// Jobs step in rotation, one iteration each.
    RoundRobin,
}

/// One submitted job's live state inside the service.
struct Job {
    id: u64,
    spec: JobSpec,
    /// Cluster nodes held while active (indices into the node pool).
    nodes: Vec<usize>,
    /// Order of admission (for FIFO).
    admit_seq: usize,
    world: Option<World>,
    started: SimTime,
    /// Virtual time the job's last completed step ended (= `started`
    /// before the first step).
    clock: SimTime,
    next_step: usize,
    folded: Option<Partial>,
    per_step: Vec<Vec<f64>>,
    plan_stats: PlanCacheStats,
    ost_busy: f64,
    lane_bytes: u64,
    /// Already-finalized global from the serial runner (the concurrent
    /// path finalizes `folded` instead).
    serial_global: Option<Vec<f64>>,
}

impl Job {
    fn finished(&self) -> bool {
        self.next_step >= self.spec.steps.len()
    }

    fn into_result(self) -> JobResult {
        let global = self
            .serial_global
            .or_else(|| self.folded.as_ref().map(|p| self.spec.kernel.finalize(p)));
        let per_step = (!self.per_step.is_empty()).then_some(self.per_step);
        JobResult {
            id: self.id,
            name: self.spec.name,
            class: self.spec.class,
            submitted: self.spec.arrival,
            started: self.started,
            finished: self.clock,
            global,
            per_step,
            steps: self.next_step,
            plan_cache: self.plan_stats,
            ost_busy_secs: self.ost_busy,
            lane_bytes: self.lane_bytes,
        }
    }
}

/// What a service run produced: per-job results (indexed by
/// [`JobHandle::id`]), the makespan, and the shared-resource accounting.
#[derive(Debug)]
pub struct ServiceOutcome {
    /// Every job's result, in submission order.
    pub jobs: Vec<JobResult>,
    /// Virtual time the last job finished.
    pub makespan: SimTime,
    /// Plan-cache counters: the shared cache's lifetime stats for a
    /// concurrent run, the fold of per-job private-cache stats for a
    /// serial run (where `cross_job_*` is structurally zero).
    pub cache: PlanCacheStats,
    /// Per-OST load snapshots at the makespan (backlog is zero by then;
    /// the totals and wait columns describe the whole run).
    pub ost: Vec<OstSnapshot>,
    /// Backbone-lane counters, when the service ran with a shared lane.
    pub lane: Option<LaneStats>,
    /// Median per-job latency (submission → finish). Both the concurrent
    /// and the serial/independent path fill this, so fused-vs-independent
    /// latency comparisons read off one struct instead of re-deriving
    /// percentiles from makespans.
    pub latency_p50: SimTime,
    /// 99th-percentile per-job latency (submission → finish).
    pub latency_p99: SimTime,
}

impl ServiceOutcome {
    /// Jobs completed per virtual second — the aggregate throughput the
    /// headline bench compares against serial execution.
    pub fn jobs_per_sec(&self) -> f64 {
        if self.makespan == SimTime::ZERO {
            return 0.0;
        }
        self.jobs.len() as f64 / self.makespan.secs()
    }
}

/// The `p`-th percentile of a set of virtual durations (nearest-rank, the
/// same convention the bench harness uses); zero for an empty set.
pub fn percentile_time(mut times: Vec<SimTime>, p: f64) -> SimTime {
    if times.is_empty() {
        return SimTime::ZERO;
    }
    times.sort();
    let idx = ((times.len() as f64 * p / 100.0).ceil() as usize).clamp(1, times.len());
    times[idx - 1]
}

/// A scheduler running N concurrent collective jobs over one shared
/// cluster: one [`Pfs`] (OST contention), one optional backbone
/// [`SharedLane`] (inter-node contention), one process-wide
/// [`SharedPlanCache`] (cross-job schedule reuse), and per-job rank pools
/// carved from the cluster's nodes.
///
/// Jobs execute one engine step (one collective iteration of their sweep)
/// at a time; the [`ServicePolicy`] picks which admitted job steps next.
/// Real bytes move inside each step exactly as in a solo run — scheduling
/// changes *when* virtual-time demand lands on the shared resources, never
/// what any job computes, so per-job results are bit-identical to solo
/// runs under every policy and interleaving.
pub struct Service {
    model: ClusterModel,
    pfs: Arc<Pfs>,
    cache: SharedPlanCache,
    lane: Option<SharedLane>,
    policy: ServicePolicy,
    jobs: Vec<Job>,
}

impl Service {
    /// A service over `model`'s cluster and the shared file system `pfs`
    /// (files must already be created), with the default QoS-WFQ policy
    /// and no backbone lane.
    pub fn new(model: ClusterModel, pfs: Arc<Pfs>) -> Self {
        Self {
            model,
            pfs,
            cache: SharedPlanCache::new(),
            lane: None,
            policy: ServicePolicy::default(),
            jobs: Vec::new(),
        }
    }

    /// Sets the scheduling policy.
    pub fn with_policy(mut self, policy: ServicePolicy) -> Self {
        self.policy = policy;
        self
    }

    /// Adds a shared backbone lane of `bytes_per_sec` aggregate capacity:
    /// each step's inter-node bytes are booked on it, and the step does
    /// not complete before its lane booking drains. Models the aggregate
    /// fabric the per-job `NetModel` cannot see.
    pub fn with_backbone(mut self, bytes_per_sec: f64) -> Self {
        self.lane = Some(SharedLane::new(bytes_per_sec));
        self
    }

    /// Admission control: validates the spec against the cluster and file
    /// system and enqueues the job. Placement happens inside
    /// [`run`](Self::run), at the job's virtual arrival (or when nodes
    /// free up, whichever is later).
    pub fn submit(&mut self, spec: JobSpec) -> Result<JobHandle, AdmissionError> {
        if spec.nprocs == 0 {
            return Err(AdmissionError::ZeroRanks);
        }
        if spec.steps.is_empty() {
            return Err(AdmissionError::NoSteps);
        }
        if !(spec.weight.is_finite() && spec.weight > 0.0) {
            return Err(AdmissionError::BadWeight(spec.weight));
        }
        let cores = self.model.topology.cores_per_node;
        let needed_nodes = spec.nprocs.div_ceil(cores);
        if needed_nodes > self.model.topology.nodes {
            return Err(AdmissionError::TooLarge {
                needed_nodes,
                cluster_nodes: self.model.topology.nodes,
            });
        }
        if self.pfs.open(&spec.file).is_none() {
            return Err(AdmissionError::UnknownFile(spec.file.clone()));
        }
        for (i, step) in spec.steps.iter().enumerate() {
            assert_eq!(
                step.start.len(),
                step.count.len(),
                "job {:?} step {i}: start/count rank mismatch",
                spec.name,
            );
            let rows = step.count.first().copied().unwrap_or(0);
            if rows < spec.nprocs as u64 {
                return Err(AdmissionError::StepTooNarrow {
                    step: i,
                    rows,
                    nprocs: spec.nprocs,
                });
            }
        }
        let id = self.jobs.len() as u64;
        self.jobs.push(Job {
            id,
            spec,
            nodes: Vec::new(),
            admit_seq: usize::MAX,
            world: None,
            started: SimTime::ZERO,
            clock: SimTime::ZERO,
            next_step: 0,
            folded: None,
            per_step: Vec::new(),
            plan_stats: PlanCacheStats::default(),
            ost_busy: 0.0,
            lane_bytes: 0,
            serial_global: None,
        });
        Ok(JobHandle { id })
    }

    /// Runs every submitted job concurrently under the configured policy
    /// and returns the per-job results and shared-resource accounting.
    pub fn run(self) -> ServiceOutcome {
        let Service {
            model,
            pfs,
            cache,
            lane,
            policy,
            mut jobs,
        } = self;
        let cores = model.topology.cores_per_node;
        let total_nodes = model.topology.nodes;
        let mut free_at = vec![SimTime::ZERO; total_nodes];
        let mut held = vec![false; total_nodes];
        // Admission queue: arrival order, interactive before batch on
        // ties, submission order last.
        let mut queued: Vec<usize> = (0..jobs.len()).collect();
        queued.sort_by(|&a, &b| {
            let (ja, jb) = (&jobs[a], &jobs[b]);
            ja.spec
                .arrival
                .cmp(&jb.spec.arrival)
                .then_with(|| {
                    let rank = |c: QosClass| match c {
                        QosClass::Interactive => 0,
                        QosClass::Batch => 1,
                    };
                    rank(ja.spec.class).cmp(&rank(jb.spec.class))
                })
                .then(a.cmp(&b))
        });
        let mut active: Vec<usize> = Vec::new();
        let mut admit_seq = 0usize;
        let mut rr = 0usize;
        let mut remaining = jobs.len();
        while remaining > 0 {
            // Backfilling admission: walk the queue in order and place
            // every job whose node demand fits the currently free nodes —
            // a small interactive job is not stuck behind a wide batch
            // job waiting for the cluster to drain.
            let mut i = 0;
            while i < queued.len() {
                let idx = queued[i];
                let needed = jobs[idx].spec.nprocs.div_ceil(cores);
                let mut free: Vec<usize> = (0..total_nodes).filter(|&k| !held[k]).collect();
                if free.len() < needed {
                    i += 1;
                    continue;
                }
                // Take the `needed` free nodes that free up earliest; the
                // job starts once it has arrived AND its last node is free.
                free.sort_by_key(|&k| free_at[k]);
                free.truncate(needed);
                let nodes_ready = free.iter().map(|&k| free_at[k]).max().unwrap_or(SimTime::ZERO);
                let start = jobs[idx].spec.arrival.max(nodes_ready);
                for &k in &free {
                    held[k] = true;
                }
                let job = &mut jobs[idx];
                job.nodes = free;
                job.started = start;
                job.clock = start;
                job.admit_seq = admit_seq;
                admit_seq += 1;
                // The job's world spans exactly its carved-out nodes; jobs
                // of equal width get identical sub-topologies, which is
                // what lets their plan-cache keys collide (by design).
                let mut m = model.clone();
                m.topology = Topology::new(needed, cores);
                job.world = Some(World::new(job.spec.nprocs, m));
                active.push(idx);
                queued.remove(i);
            }
            let pos = pick(policy, &jobs, &active, &mut rr);
            let idx = active[pos];
            step_job(&mut jobs[idx], &pfs, &cache, lane.as_ref());
            if jobs[idx].finished() {
                let fin = jobs[idx].clock;
                for &k in &jobs[idx].nodes {
                    held[k] = false;
                    free_at[k] = fin;
                }
                jobs[idx].world = None;
                active.remove(pos);
                remaining -= 1;
            }
        }
        assemble(jobs, cache.stats(), &pfs, lane.as_ref())
    }

    /// Runs the same submitted jobs one after another (arrival order, ties
    /// by submission), each over the full event horizon of its
    /// predecessor: job i starts at `max(arrival_i, finish_{i-1})`, with a
    /// private per-rank plan cache — the no-sharing baseline the headline
    /// bench compares the concurrent run against.
    pub fn run_serial(self) -> ServiceOutcome {
        let Service {
            model,
            pfs,
            lane,
            mut jobs,
            ..
        } = self;
        let cores = model.topology.cores_per_node;
        let mut order: Vec<usize> = (0..jobs.len()).collect();
        order.sort_by(|&a, &b| {
            jobs[a]
                .spec
                .arrival
                .cmp(&jobs[b].spec.arrival)
                .then(a.cmp(&b))
        });
        let mut prev_end = SimTime::ZERO;
        let mut cache_total = PlanCacheStats::default();
        for idx in order {
            let job = &mut jobs[idx];
            let needed = job.spec.nprocs.div_ceil(cores);
            let mut m = model.clone();
            m.topology = Topology::new(needed, cores);
            let world = World::new(job.spec.nprocs, m);
            let start = job.spec.arrival.max(prev_end);
            job.started = start;
            let busy_before: f64 = pfs.per_ost_busy_secs().iter().sum();
            let spec = &job.spec;
            let pfs_ref = &*pfs;
            let outs = world.run(move |comm| {
                comm.advance_to(start);
                let file = pfs_ref.open(&spec.file).unwrap_or_else(|| {
                    panic!("job {:?}: file {:?} disappeared", spec.name, spec.file)
                });
                let steps: Vec<_> = spec
                    .steps
                    .iter()
                    .map(|s| (&spec.var, spec.rank_io(s, comm.rank(), comm.nprocs())))
                    .collect();
                iterative_get_vara(comm, pfs_ref, &file, &steps, &*spec.kernel)
            });
            let busy_after: f64 = pfs.per_ost_busy_secs().iter().sum();
            let mut end = start;
            let mut inter = 0u64;
            for o in &outs {
                if let Some(last) = o.steps.last() {
                    end = end.max(last.report.end);
                }
                inter += o.comm.bytes_inter as u64;
                job.plan_stats = job.plan_stats.merge(&o.plan_cache);
            }
            if let Some(lane) = lane.as_ref() {
                if inter > 0 {
                    end = end.max(lane.book_bytes(start, inter));
                    job.lane_bytes = inter;
                }
            }
            // The root's finalized results, shaped exactly as the
            // concurrent path shapes them.
            let root = &outs[0];
            job.per_step = root.per_step.clone().unwrap_or_default();
            job.serial_global = root.global.clone();
            job.ost_busy = busy_after - busy_before;
            job.clock = end;
            job.next_step = job.spec.steps.len();
            cache_total = cache_total.merge(&job.plan_stats);
            prev_end = end;
        }
        assemble(jobs, cache_total, &pfs, lane.as_ref())
    }
}

/// Picks the position (within `active`) of the next job to step.
fn pick(policy: ServicePolicy, jobs: &[Job], active: &[usize], rr: &mut usize) -> usize {
    assert!(!active.is_empty(), "scheduler stepped with no active jobs");
    match policy {
        ServicePolicy::Fifo => active
            .iter()
            .enumerate()
            .min_by_key(|(_, &idx)| jobs[idx].admit_seq)
            .map(|(pos, _)| pos)
            .unwrap(),
        ServicePolicy::RoundRobin => {
            let pos = *rr % active.len();
            *rr = rr.wrapping_add(1);
            pos
        }
        ServicePolicy::QosWfq => {
            // Interactive first: earliest job clock wins, so the
            // latency-sensitive job whose virtual frontier is furthest
            // behind claims shared capacity before anyone else books it.
            let interactive = active
                .iter()
                .enumerate()
                .filter(|(_, &idx)| jobs[idx].spec.class == QosClass::Interactive)
                .min_by(|(_, &a), (_, &b)| {
                    jobs[a]
                        .clock
                        .cmp(&jobs[b].clock)
                        .then(jobs[a].id.cmp(&jobs[b].id))
                })
                .map(|(pos, _)| pos);
            if let Some(pos) = interactive {
                return pos;
            }
            // Batch: weighted fair queueing over attributed OST
            // busy-seconds — the job with the smallest service-per-weight
            // steps next; ties go to the earliest clock, then id.
            active
                .iter()
                .enumerate()
                .min_by(|(_, &a), (_, &b)| {
                    let va = jobs[a].ost_busy / jobs[a].spec.weight;
                    let vb = jobs[b].ost_busy / jobs[b].spec.weight;
                    va.partial_cmp(&vb)
                        .unwrap()
                        .then(jobs[a].clock.cmp(&jobs[b].clock))
                        .then(jobs[a].id.cmp(&jobs[b].id))
                })
                .map(|(pos, _)| pos)
                .unwrap()
        }
    }
}

/// Runs one engine step of `job` against the shared resources.
fn step_job(job: &mut Job, pfs: &Pfs, cache: &SharedPlanCache, lane: Option<&SharedLane>) {
    let t0 = job.clock;
    let busy_before: f64 = pfs.per_ost_busy_secs().iter().sum();
    let spec = &job.spec;
    let step = &spec.steps[job.next_step];
    let jid = job.id;
    let world = job.world.as_ref().expect("active job has a world");
    let results = world.run(move |comm| {
        // Per-rank clocks start at zero in every World::run; advancing to
        // the job's frontier places this step at its virtual time, so OST
        // and lane bookings land where the job actually is.
        comm.advance_to(t0);
        let file = pfs.open(&spec.file).unwrap_or_else(|| {
            panic!("job {jid} ({:?}): file {:?} disappeared", spec.name, spec.file)
        });
        let io = spec.rank_io(step, comm.rank(), comm.nprocs());
        let mut plans = PlanSource::shared(cache, jid);
        let out = object_get_vara_planned(comm, pfs, &file, &spec.var, &io, &*spec.kernel, &mut plans);
        (out, plans.seen(), comm.stats())
    });
    let busy_after: f64 = pfs.per_ost_busy_secs().iter().sum();
    let mut end = t0;
    let mut inter = 0u64;
    for (out, seen, stats) in &results {
        end = end.max(out.report.end);
        inter += stats.bytes_inter as u64;
        job.plan_stats = job.plan_stats.merge(seen);
    }
    if let Some(lane) = lane {
        if inter > 0 {
            end = end.max(lane.book_bytes(t0, inter));
            job.lane_bytes += inter;
        }
    }
    // Fold the root's partial across steps, exactly as
    // `iterative_get_vara` does within a sweep.
    let root_out = &results[0].0;
    if let Some(p) = &root_out.global_partial {
        let global = root_out
            .global
            .clone()
            .unwrap_or_else(|| panic!("job {jid}: step produced a partial without its global"));
        job.per_step.push(global);
        match &mut job.folded {
            Some(acc) => spec.kernel.combine(acc, p),
            acc => *acc = Some(p.clone()),
        }
    }
    // Steps execute one at a time in real time, so the pool-wide busy
    // delta across this step is exactly the service this job booked.
    job.ost_busy += busy_after - busy_before;
    job.clock = end;
    job.next_step += 1;
}

/// Builds the outcome from finished jobs (already in id order).
fn assemble(
    jobs: Vec<Job>,
    cache: PlanCacheStats,
    pfs: &Pfs,
    lane: Option<&SharedLane>,
) -> ServiceOutcome {
    let makespan = jobs.iter().map(|j| j.clock).max().unwrap_or(SimTime::ZERO);
    let ost = pfs.ost_snapshot(makespan);
    let lane = lane.map(|l| l.stats());
    let jobs: Vec<JobResult> = jobs.into_iter().map(Job::into_result).collect();
    let latencies: Vec<SimTime> = jobs.iter().map(JobResult::latency).collect();
    let latency_p50 = percentile_time(latencies.clone(), 50.0);
    let latency_p99 = percentile_time(latencies, 99.0);
    ServiceOutcome {
        jobs,
        makespan,
        cache,
        ost,
        lane,
        latency_p50,
        latency_p99,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::job::StepSpec;
    use cc_array::{DType, Shape, Variable};
    use cc_core::SumKernel;
    use cc_model::DiskModel;
    use cc_pfs::backend::{ElemKind, SyntheticBackend};
    use cc_pfs::StripeLayout;

    fn value(i: u64) -> f64 {
        ((i * 29 + 7) % 127) as f64 - 60.0
    }

    fn cluster(nodes: usize, cores: usize) -> ClusterModel {
        let mut m = ClusterModel::test_tiny(cores);
        m.topology = Topology::new(nodes, cores);
        m
    }

    fn fs_with(files: &[&str], elems: u64) -> Arc<Pfs> {
        let fs = Pfs::new(4, DiskModel::lustre_like());
        for name in files {
            fs.create(
                name,
                StripeLayout::round_robin(4096, 4, 0, 4),
                Box::new(SyntheticBackend::new(elems, ElemKind::F64, value)),
            );
        }
        Arc::new(fs)
    }

    fn var(rows: u64, cols: u64) -> Variable {
        Variable::new("v", Shape::new(vec![rows, cols]), DType::F64, 0)
    }

    /// A batch sweep over `file`: `nsteps` steps of `rows_per_step` rows.
    fn sweep_job(name: &str, file: &str, nprocs: usize, nsteps: u64, rows_per_step: u64, cols: u64) -> JobSpec {
        let mut spec = JobSpec::new(
            name,
            file,
            var(nsteps * rows_per_step, cols),
            nprocs,
            Arc::new(SumKernel),
        );
        for s in 0..nsteps {
            spec = spec.step(vec![s * rows_per_step, 0], vec![rows_per_step, cols]);
        }
        spec
    }

    #[test]
    fn admission_rejects_bad_specs() {
        let fs = fs_with(&["f"], 64 * 16);
        let mut svc = Service::new(cluster(2, 2), fs);
        let ok = sweep_job("ok", "f", 2, 2, 32, 16);
        assert_eq!(
            svc.submit(JobSpec { nprocs: 0, ..ok.clone() }),
            Err(AdmissionError::ZeroRanks)
        );
        assert_eq!(
            svc.submit(JobSpec { steps: vec![], ..ok.clone() }),
            Err(AdmissionError::NoSteps)
        );
        assert_eq!(
            svc.submit(ok.clone().weight(0.0)),
            Err(AdmissionError::BadWeight(0.0))
        );
        assert_eq!(
            svc.submit(JobSpec { nprocs: 32, ..ok.clone() }),
            Err(AdmissionError::TooLarge { needed_nodes: 16, cluster_nodes: 2 })
        );
        assert_eq!(
            svc.submit(JobSpec { file: "nope".into(), ..ok.clone() }),
            Err(AdmissionError::UnknownFile("nope".into()))
        );
        let narrow = JobSpec {
            steps: vec![StepSpec { start: vec![0, 0], count: vec![1, 16] }],
            ..ok.clone()
        };
        assert_eq!(
            svc.submit(narrow),
            Err(AdmissionError::StepTooNarrow { step: 0, rows: 1, nprocs: 2 })
        );
        assert!(svc.submit(ok).is_ok());
    }

    /// Three concurrent jobs (two batch sweeps on different files, one
    /// interactive ROI query) produce per-job results bit-identical to the
    /// same jobs run serially, while finishing no later in aggregate.
    #[test]
    fn concurrent_matches_serial_bit_identical() {
        let submit_all = |svc: &mut Service| {
            // Four ranks over two nodes each: the shuffle crosses nodes,
            // so the shared backbone lane sees real traffic.
            svc.submit(sweep_job("batch-a", "a", 4, 4, 16, 64)).unwrap();
            svc.submit(sweep_job("batch-b", "b", 4, 4, 16, 64)).unwrap();
            svc.submit(
                sweep_job("roi", "a", 2, 1, 8, 64)
                    .class(QosClass::Interactive)
                    .arrival(SimTime::from_secs(1e-4)),
            )
            .unwrap();
        };
        let mut concurrent = Service::new(cluster(4, 2), fs_with(&["a", "b"], 64 * 64))
            .with_backbone(5e8);
        submit_all(&mut concurrent);
        let conc = concurrent.run();
        let mut serial = Service::new(cluster(4, 2), fs_with(&["a", "b"], 64 * 64))
            .with_backbone(5e8);
        submit_all(&mut serial);
        let ser = serial.run_serial();
        assert_eq!(conc.jobs.len(), 3);
        for (c, s) in conc.jobs.iter().zip(&ser.jobs) {
            assert_eq!(c.id, s.id);
            assert_eq!(c.steps, s.steps);
            assert!(c.global.is_some(), "job {} lost its global", c.name);
            assert_eq!(c.checksum(), s.checksum(), "job {} diverged", c.name);
            assert!(c.finished > c.started);
        }
        // The batch sweep's fold matches the analytic sum of its file.
        let expect: f64 = (0..64 * 64).map(value).sum();
        let got = conc.jobs[0].global.as_ref().unwrap()[0];
        assert!((got - expect).abs() < 1e-9 * expect.abs().max(1.0));
        // Interleaving overlaps demand windows: the concurrent makespan
        // must beat chaining the jobs end to end.
        assert!(
            conc.makespan < ser.makespan,
            "concurrent {:?} vs serial {:?}",
            conc.makespan,
            ser.makespan
        );
        // Shared-resource accounting is populated.
        assert!(conc.jobs.iter().all(|j| j.ost_busy_secs > 0.0));
        assert!(conc.lane.unwrap().bytes > 0);
        assert!(conc.ost.iter().map(|o| o.bytes).sum::<u64>() > 0);
        // Two equal-shape sweeps on equally-striped files share plans.
        assert!(conc.cache.cross_job_hits + conc.cache.cross_job_translations > 0);
        // Serial jobs use private caches: cross-job reuse is impossible.
        assert_eq!(ser.cache.cross_job_hits, 0);
        assert_eq!(ser.cache.cross_job_translations, 0);
    }

    /// Exact shared-cache accounting with single-rank jobs: the first
    /// lookup anywhere compiles, every other identical lookup hits, and
    /// the two lookups made by the non-compiling job are cross-job.
    #[test]
    fn shared_cache_exact_cross_job_hits() {
        let fs = fs_with(&["a", "b"], 32 * 32);
        let mut svc = Service::new(cluster(2, 1), fs);
        svc.submit(sweep_job("a", "a", 1, 1, 16, 32).step(vec![0, 0], vec![16, 32])).unwrap();
        svc.submit(sweep_job("b", "b", 1, 1, 16, 32).step(vec![0, 0], vec![16, 32])).unwrap();
        let out = svc.run();
        assert_eq!(out.cache.misses, 1);
        assert_eq!(out.cache.hits, 3);
        assert_eq!(out.cache.translations, 0);
        assert_eq!(out.cache.cross_job_hits, 2);
        // Per-job counters partition the shared totals.
        let folded = out
            .jobs
            .iter()
            .fold(PlanCacheStats::default(), |acc, j| acc.merge(&j.plan_cache));
        assert_eq!(folded, out.cache);
        // One job compiled (no cross lookups), the other rode entirely on
        // the neighbour's schedule.
        let crosses: Vec<u64> = out.jobs.iter().map(|j| j.plan_cache.cross_job_hits).collect();
        assert!(crosses == vec![0, 2] || crosses == vec![2, 0], "{crosses:?}");
    }

    /// Same-shape steps at shifted offsets translate the neighbour's
    /// schedule instead of recompiling: translations never insert cache
    /// entries, so both shifted lookups translate and both are cross-job.
    #[test]
    fn shared_cache_exact_cross_job_translations() {
        let fs = fs_with(&["a", "b"], 32 * 32);
        let mut svc = Service::new(cluster(2, 1), fs);
        svc.submit(sweep_job("a", "a", 1, 1, 16, 32).step(vec![0, 0], vec![16, 32])).unwrap();
        svc.submit(sweep_job("b", "b", 1, 2, 8, 32)).unwrap();
        let out = svc.run();
        // Job a: two identical [16,32] lookups. Job b: two [8,32] lookups,
        // the second shifted 8 rows. Keys differ between jobs here, so the
        // cross-job traffic is zero but the within-job translation works:
        assert_eq!(out.cache.lookups(), 4);
        assert_eq!(out.cache.misses, 2);
        assert_eq!(out.cache.hits, 1);
        assert_eq!(out.cache.translations, 1);
        // Now two jobs whose steps are shifted copies of EACH OTHER.
        let fs = fs_with(&["a", "b"], 32 * 32);
        let mut svc = Service::new(cluster(2, 1), fs);
        svc.submit(sweep_job("a", "a", 1, 1, 16, 32).arrival(SimTime::ZERO)).unwrap();
        // Same [16,32] shape as job a's step, shifted 16 rows into a
        // 32-row variable.
        let base = sweep_job("b", "b", 1, 2, 16, 32);
        let shifted = JobSpec { steps: vec![base.steps[1].clone()], ..base };
        svc.submit(shifted).unwrap();
        let out = svc.run();
        assert_eq!(out.cache.lookups(), 2);
        assert_eq!(out.cache.misses, 1);
        assert_eq!(out.cache.translations, 1);
        assert_eq!(out.cache.cross_job_translations, 1);
    }

    /// Under QoS-WFQ an interactive job books shared capacity ahead of a
    /// long batch sweep it contends with; under FIFO it waits for the
    /// whole sweep. Its latency must strictly improve, and neither job's
    /// data may change.
    #[test]
    fn qos_beats_fifo_for_interactive_latency() {
        let run_with = |policy: ServicePolicy| {
            let mut svc = Service::new(cluster(4, 2), fs_with(&["f"], 64 * 64))
                .with_policy(policy);
            svc.submit(sweep_job("bg", "f", 2, 8, 8, 64)).unwrap();
            svc.submit(
                sweep_job("roi", "f", 2, 1, 8, 64)
                    .class(QosClass::Interactive)
                    .arrival(SimTime::from_secs(1e-4)),
            )
            .unwrap();
            svc.run()
        };
        let fifo = run_with(ServicePolicy::Fifo);
        let wfq = run_with(ServicePolicy::QosWfq);
        let (f_roi, w_roi) = (&fifo.jobs[1], &wfq.jobs[1]);
        assert!(
            w_roi.latency() < f_roi.latency(),
            "wfq {:?} vs fifo {:?}",
            w_roi.latency(),
            f_roi.latency()
        );
        for (a, b) in fifo.jobs.iter().zip(&wfq.jobs) {
            assert_eq!(a.checksum(), b.checksum(), "policy changed job {} data", a.name);
        }
    }

    /// WFQ weights steer batch service: with jobs of equal demand, the
    /// heavier job's virtual time grows slower, so it finishes first.
    #[test]
    fn wfq_weights_order_batch_completion() {
        let mut svc = Service::new(cluster(4, 2), fs_with(&["a", "b"], 64 * 64));
        svc.submit(sweep_job("light", "a", 2, 6, 8, 64).weight(1.0)).unwrap();
        svc.submit(sweep_job("heavy", "b", 2, 6, 8, 64).weight(8.0)).unwrap();
        let out = svc.run();
        assert!(
            out.jobs[1].finished < out.jobs[0].finished,
            "heavy {:?} should finish before light {:?}",
            out.jobs[1].finished,
            out.jobs[0].finished
        );
    }

    /// Round-robin also preserves per-job data (spot check that the loop
    /// is policy-agnostic about results).
    #[test]
    fn round_robin_matches_serial_checksums() {
        let mk = || {
            let mut svc = Service::new(cluster(2, 2), fs_with(&["a", "b"], 32 * 32))
                .with_policy(ServicePolicy::RoundRobin);
            svc.submit(sweep_job("a", "a", 2, 3, 8, 32)).unwrap();
            svc.submit(sweep_job("b", "b", 2, 3, 8, 32)).unwrap();
            svc
        };
        let conc = mk().run();
        let ser = mk().run_serial();
        for (c, s) in conc.jobs.iter().zip(&ser.jobs) {
            assert_eq!(c.checksum(), s.checksum());
        }
    }

    /// Both runners report latency percentiles over per-job (submission →
    /// finish) latencies, so fused-vs-independent comparisons read off one
    /// struct.
    #[test]
    fn outcomes_report_latency_percentiles() {
        let mk = || {
            let mut svc = Service::new(cluster(2, 2), fs_with(&["a", "b"], 32 * 32));
            svc.submit(sweep_job("a", "a", 2, 3, 8, 32)).unwrap();
            svc.submit(sweep_job("b", "b", 2, 3, 8, 32)).unwrap();
            svc
        };
        for out in [mk().run(), mk().run_serial()] {
            assert!(out.latency_p50 > SimTime::ZERO);
            assert!(out.latency_p50 <= out.latency_p99);
            let worst = out.jobs.iter().map(JobResult::latency).max().unwrap();
            assert_eq!(out.latency_p99, worst, "p99 of 2 jobs is the max");
        }
        // Nearest-rank percentile convention, pinned.
        let times: Vec<SimTime> = (1..=100).map(|i| SimTime::from_secs(i as f64)).collect();
        assert_eq!(percentile_time(times.clone(), 50.0), SimTime::from_secs(50.0));
        assert_eq!(percentile_time(times, 99.0), SimTime::from_secs(99.0));
        assert_eq!(percentile_time(Vec::new(), 50.0), SimTime::ZERO);
    }

    /// More queued jobs than nodes: placement queues the overflow and
    /// reuses freed nodes; every job still runs and finishes.
    #[test]
    fn placement_queues_when_cluster_full() {
        let mut svc = Service::new(cluster(2, 2), fs_with(&["f"], 64 * 64));
        for i in 0..5 {
            svc.submit(sweep_job(&format!("j{i}"), "f", 4, 2, 8, 64)).unwrap();
        }
        let out = svc.run();
        assert_eq!(out.jobs.len(), 5);
        assert!(out.jobs.iter().all(|j| j.steps == 2 && j.global.is_some()));
        // Only two nodes: at least three jobs had to start strictly after
        // an earlier job finished.
        let first_finish = out.jobs.iter().map(|j| j.finished).min().unwrap();
        let late_starters = out.jobs.iter().filter(|j| j.started >= first_finish).count();
        assert!(late_starters >= 3, "late starters: {late_starters}");
    }
}
