//! Many-task request fusion: admit thousands of tiny analysis tasks and
//! serve them with shared collective sweeps instead of independent I/O.
//!
//! The loosely-coupled many-task regime is the paper's worst case for
//! independent I/O: each task wants a few kilobytes from a big shared
//! file, so running tasks naively issues one positioning operation per
//! task extent and re-reads every overlapped byte once per task. The
//! [`TaskBatch`] runner flips the traffic collective:
//!
//! 1. **Admission** — a [`TaskSpec`] names a file, a variable, a
//!    hyperslab region, a kernel, and an arrival time; [`TaskBatch::submit`]
//!    validates it against the file system and the variable's shape.
//! 2. **Binning** — tasks are grouped by `(file, kernel tolerance class)`
//!    in arrival order; a bin closes when it reaches
//!    [`BatchPolicy::max_bin_tasks`] or when the next compatible task
//!    arrives more than [`BatchPolicy::fuse_window`] after the bin opened
//!    (the incremental-staging arrival pattern: each staged wave becomes
//!    its own bin).
//! 3. **Fusion** — each bin's tasks are ordered by file offset, split
//!    contiguously across the batch ranks, and every rank's task extents
//!    are union-merged into one deduplicated request
//!    ([`cc_mpiio::fuse_extents`]); duplicate and overlapping regions
//!    are read once.
//! 4. **One collective sweep per bin** — the fused per-rank requests go
//!    through [`cc_mpiio::collective_read_planned`] with the batch's
//!    [`SharedPlanCache`], so bins with translated-copy request shapes
//!    (stencil waves marching through a staged file) amortize to one
//!    compiled schedule; [`PlanCacheStats::fused_tasks`] records how many
//!    tasks each compile served.
//! 5. **Result scatter** — each task's bytes are projected back out of
//!    its rank's fused buffer and folded through its own kernel
//!    ([`cc_core::fold_task_from_fused`]), bit-identical to a solo
//!    execution of the task, with per-task latency attribution.
//!
//! [`TaskBatch::run_independent`] is the thrash baseline (every task
//! reads its own extents directly), and [`TaskBatch::run_solo`] is the
//! ground truth (each task alone in its own world) the property tests
//! compare checksums against.

use std::fmt;
use std::sync::Arc;

use cc_array::{Hyperslab, Variable};
use cc_core::{fold_task_bytes, fold_task_from_fused, MapKernel, Tolerance};
use cc_model::{ClusterModel, SimTime};
use cc_mpi::World;
use cc_mpiio::{
    collective_read_planned, fuse_extents, independent_read, Compression, Hints, OffsetList,
    PlanCacheStats, PlanSource, SharedPlanCache,
};
use cc_pfs::Pfs;

use crate::service::percentile_time;

/// One tiny analysis task: a region of a variable in a file, a kernel to
/// fold over it, and a virtual arrival time.
#[derive(Clone)]
pub struct TaskSpec {
    /// Display name (carried into diagnostics).
    pub name: String,
    /// Name of the file in the batch's shared file system.
    pub file: String,
    /// The variable the region selects from.
    pub var: Variable,
    /// Per-dimension selection start.
    pub start: Vec<u64>,
    /// Per-dimension selection count.
    pub count: Vec<u64>,
    /// The kernel folded over the region.
    pub kernel: Arc<dyn MapKernel>,
    /// Virtual arrival time; the task is never served earlier.
    pub arrival: SimTime,
}

impl fmt::Debug for TaskSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("TaskSpec")
            .field("name", &self.name)
            .field("file", &self.file)
            .field("start", &self.start)
            .field("count", &self.count)
            .field("arrival", &self.arrival)
            .finish_non_exhaustive()
    }
}

impl TaskSpec {
    /// A task arriving at time zero; adjust with [`arrival`](Self::arrival).
    pub fn new(
        name: impl Into<String>,
        file: impl Into<String>,
        var: Variable,
        start: Vec<u64>,
        count: Vec<u64>,
        kernel: Arc<dyn MapKernel>,
    ) -> Self {
        Self {
            name: name.into(),
            file: file.into(),
            var,
            start,
            count,
            kernel,
            arrival: SimTime::ZERO,
        }
    }

    /// Sets the arrival time.
    pub fn arrival(mut self, at: SimTime) -> Self {
        self.arrival = at;
        self
    }
}

/// Why a [`TaskSpec`] was refused at submission.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BatchAdmissionError {
    /// The named file does not exist in the batch's file system.
    UnknownFile(String),
    /// `start`/`count` dimensionality does not match the variable.
    RankMismatch {
        /// The task's display name.
        task: String,
        /// Dimensions in the selection.
        got: usize,
        /// Dimensions of the variable.
        var_rank: usize,
    },
    /// A selection dimension has zero count.
    EmptySelection {
        /// The task's display name.
        task: String,
    },
    /// The selection runs past the variable's shape.
    OutOfBounds {
        /// The task's display name.
        task: String,
        /// The offending dimension.
        dim: usize,
        /// `start[dim] + count[dim]`.
        end: u64,
        /// The variable's extent in that dimension.
        extent: u64,
    },
}

impl fmt::Display for BatchAdmissionError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BatchAdmissionError::UnknownFile(name) => {
                write!(f, "file {name:?} does not exist in the batch file system")
            }
            BatchAdmissionError::RankMismatch { task, got, var_rank } => write!(
                f,
                "task {task:?}: selection has {got} dims but the variable has {var_rank}"
            ),
            BatchAdmissionError::EmptySelection { task } => {
                write!(f, "task {task:?}: selection is empty")
            }
            BatchAdmissionError::OutOfBounds { task, dim, end, extent } => write!(
                f,
                "task {task:?}: dim {dim} selects up to {end} but the variable holds {extent}"
            ),
        }
    }
}

impl std::error::Error for BatchAdmissionError {}

/// Batching knobs of a [`TaskBatch`].
#[derive(Debug, Clone)]
pub struct BatchPolicy {
    /// Ranks every fused sweep (and the independent baseline) runs on.
    pub nprocs: usize,
    /// A bin closes once it holds this many tasks.
    pub max_bin_tasks: usize,
    /// A bin closes when a compatible task arrives more than this after
    /// the bin's first task — the fusion latency bound. Tasks trickling
    /// in faster than the window keep extending the current bin.
    pub fuse_window: SimTime,
    /// Engine hints for the fused sweeps. Error-bounded compression is
    /// clamped to lossless: per-task bit-identity with solo execution is
    /// the batch contract, and a lossy shuffle would break it.
    pub hints: Hints,
}

impl Default for BatchPolicy {
    fn default() -> Self {
        Self {
            nprocs: 1,
            max_bin_tasks: 1 << 20,
            fuse_window: SimTime::from_secs(1e-3),
            hints: Hints::default(),
        }
    }
}

/// An admitted task: the spec plus its flattened byte request and kernel
/// tolerance class (the binning key component).
struct AdmittedTask {
    spec: TaskSpec,
    request: OffsetList,
    exact: bool,
}

/// One closed bin: compatible tasks served by one fused collective sweep.
struct Bin {
    file: String,
    exact: bool,
    tasks: Vec<usize>,
    /// When the bin can run: its last member's arrival.
    ready: SimTime,
    /// Its first member's arrival (the fuse-window anchor).
    first_arrival: SimTime,
}

/// What one bin's fused sweep looked like.
#[derive(Debug, Clone)]
pub struct BinReport {
    /// Bin id (dispatch order).
    pub bin: usize,
    /// The file swept.
    pub file: String,
    /// Tasks served by this sweep.
    pub tasks: usize,
    /// Virtual time the sweep started (≥ the last member's arrival).
    pub start: SimTime,
    /// Virtual time the last member's result was scattered.
    pub end: SimTime,
    /// Extents across the bin's task requests (what independent I/O
    /// would have issued).
    pub task_extents: u64,
    /// Extents in the fused per-rank requests.
    pub fused_extents: u64,
    /// Bytes across the bin's task requests, duplicates counted per task.
    pub task_bytes: u64,
    /// Unique bytes the fused sweep requested.
    pub fused_bytes: u64,
}

/// What one task produced and experienced.
#[derive(Debug, Clone)]
pub struct TaskResult {
    /// The task's id (submission order).
    pub id: u64,
    /// The spec's display name.
    pub name: String,
    /// The finalized kernel output.
    pub value: Vec<f64>,
    /// Virtual arrival time (from the spec).
    pub submitted: SimTime,
    /// Virtual time the task's result was ready.
    pub finished: SimTime,
    /// The bin that served the task (`None` on the independent and solo
    /// paths, which never bin).
    pub bin: Option<usize>,
}

impl TaskResult {
    /// Virtual time from arrival to result — the task's latency as its
    /// submitter experienced it, batching delay included.
    pub fn latency(&self) -> SimTime {
        self.finished.saturating_since(self.submitted)
    }

    /// FNV-1a fingerprint of the task's numeric result (bit patterns of
    /// every f64). Fused, independent, and solo executions of the same
    /// task must produce identical checksums.
    pub fn checksum(&self) -> u64 {
        let mut h = 0xcbf29ce484222325u64;
        let mut eat = |x: u64| {
            for b in x.to_le_bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x100000001b3);
            }
        };
        eat(self.value.len() as u64);
        for v in &self.value {
            eat(v.to_bits());
        }
        h
    }
}

/// What a batch run produced: per-task results, per-bin fusion reports,
/// and the shared-resource accounting the fused-vs-independent headline
/// compares.
#[derive(Debug)]
pub struct BatchOutcome {
    /// Every task's result, in submission order.
    pub tasks: Vec<TaskResult>,
    /// Per-bin fusion reports (empty on the independent and solo paths).
    pub bins: Vec<BinReport>,
    /// Virtual time the last task's result was ready.
    pub makespan: SimTime,
    /// Discontiguous extents the file system served during the run —
    /// each cost one positioning operation on an OST.
    pub extents_served: u64,
    /// Bytes the file system moved during the run.
    pub bytes_read: u64,
    /// OST busy-seconds booked during the run.
    pub ost_busy_secs: f64,
    /// Median per-task latency (arrival → result).
    pub latency_p50: SimTime,
    /// 99th-percentile per-task latency.
    pub latency_p99: SimTime,
    /// Plan-cache counters over the run; [`PlanCacheStats::amortization`]
    /// is the tasks-per-compiled-schedule headline (zero on paths that
    /// never compile a plan).
    pub plan_cache: PlanCacheStats,
}

impl BatchOutcome {
    /// FNV-1a fingerprint over every task's result, in task order — one
    /// number that must agree between fused, independent, and solo runs.
    pub fn checksum(&self) -> u64 {
        let mut h = 0xcbf29ce484222325u64;
        for t in &self.tasks {
            for b in t.checksum().to_le_bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x100000001b3);
            }
        }
        h
    }

    /// Tasks served per compiled schedule (see
    /// [`PlanCacheStats::amortization`]).
    pub fn tasks_per_schedule(&self) -> f64 {
        self.plan_cache.amortization()
    }
}

/// A many-task batch runner over one shared cluster model and file
/// system: admit tasks, then execute them fused
/// ([`run_fused`](Self::run_fused)), independently
/// ([`run_independent`](Self::run_independent)), or solo
/// ([`run_solo`](Self::run_solo)).
///
/// OST booking state persists inside a [`Pfs`], so comparative runs
/// should each build a fresh file system (the bench and tests do).
pub struct TaskBatch {
    model: ClusterModel,
    pfs: Arc<Pfs>,
    policy: BatchPolicy,
    cache: SharedPlanCache,
    tasks: Vec<AdmittedTask>,
}

impl TaskBatch {
    /// A batch over `model`'s cluster and the shared file system `pfs`
    /// (files must already be created), with the default policy.
    pub fn new(model: ClusterModel, pfs: Arc<Pfs>) -> Self {
        Self {
            model,
            pfs,
            policy: BatchPolicy::default(),
            cache: SharedPlanCache::new(),
            tasks: Vec::new(),
        }
    }

    /// Sets the batching policy.
    pub fn with_policy(mut self, policy: BatchPolicy) -> Self {
        assert!(policy.nprocs > 0, "batch policy needs at least one rank");
        assert!(
            policy.max_bin_tasks > 0,
            "batch policy needs room for at least one task per bin"
        );
        self.policy = policy;
        self
    }

    /// Admission control: validates the selection against the variable's
    /// shape and the file system, flattens it to a byte request, and
    /// enqueues the task. Returns the task's id (its index in every
    /// outcome's result list).
    pub fn submit(&mut self, spec: TaskSpec) -> Result<u64, BatchAdmissionError> {
        if self.pfs.open(&spec.file).is_none() {
            return Err(BatchAdmissionError::UnknownFile(spec.file));
        }
        let dims = spec.var.shape().dims();
        if spec.start.len() != dims.len() || spec.count.len() != dims.len() {
            return Err(BatchAdmissionError::RankMismatch {
                task: spec.name,
                got: spec.start.len().max(spec.count.len()),
                var_rank: dims.len(),
            });
        }
        if spec.count.contains(&0) {
            return Err(BatchAdmissionError::EmptySelection { task: spec.name });
        }
        for (d, (&s, &c)) in spec.start.iter().zip(&spec.count).enumerate() {
            if s + c > dims[d] {
                return Err(BatchAdmissionError::OutOfBounds {
                    task: spec.name,
                    dim: d,
                    end: s + c,
                    extent: dims[d],
                });
            }
        }
        let request = spec
            .var
            .byte_extents(&Hyperslab::new(spec.start.clone(), spec.count.clone()));
        let exact = spec.kernel.tolerance() == Tolerance::Exact;
        let id = self.tasks.len() as u64;
        self.tasks.push(AdmittedTask { spec, request, exact });
        Ok(id)
    }

    /// Runs every admitted task through fused collective sweeps: one
    /// two-phase collective per bin over the deduplicated union of the
    /// bin's task extents, results scattered back per task.
    pub fn run_fused(self) -> BatchOutcome {
        let TaskBatch {
            model,
            pfs,
            policy,
            cache,
            tasks,
        } = self;
        assert!(
            policy.nprocs <= model.topology.capacity(),
            "batch needs {} ranks but the cluster holds {}",
            policy.nprocs,
            model.topology.capacity()
        );
        let bins = plan_bins(&tasks, &policy);
        let stats0 = pfs.stats();
        let busy0: f64 = pfs.per_ost_busy_secs().iter().sum();
        let mut results: Vec<Option<TaskResult>> = (0..tasks.len()).map(|_| None).collect();
        let mut bin_reports = Vec::with_capacity(bins.len());
        let mut plan_stats = PlanCacheStats::default();
        let mut frontier = SimTime::ZERO;
        for (bin_id, bin) in bins.iter().enumerate() {
            let t0 = frontier.max(bin.ready);
            // Offset-ordered contiguous chunks: neighbouring regions land
            // on the same rank, so within-rank fusion captures the
            // overlap and the aggregators see long runs.
            let mut order = bin.tasks.clone();
            order.sort_by_key(|&t| (tasks[t].request.min_offset().unwrap_or(0), t));
            let per_rank = even_chunks(&order, policy.nprocs);
            let fused: Vec<(OffsetList, cc_mpiio::FuseStats)> = per_rank
                .iter()
                .map(|mine| fuse_extents(mine.iter().map(|&t| &tasks[t].request)))
                .collect();
            let mut hints = policy.hints.clone();
            if matches!(hints.compression, Compression::ErrorBounded(_)) {
                // Per-task bit-identity with solo execution is the batch
                // contract; lossy framing would break it for every class.
                hints.compression = Compression::Lossless;
            }
            let world = World::new(policy.nprocs, model.clone());
            let outs = {
                let tasks = &tasks;
                let per_rank = &per_rank;
                let fused = &fused;
                let pfs = &*pfs;
                let cache = &cache;
                let hints = &hints;
                let file_name = bin.file.as_str();
                world.run(move |comm| {
                    comm.advance_to(t0);
                    let mine = &per_rank[comm.rank()];
                    let fused_req = &fused[comm.rank()].0;
                    let file = pfs.open(file_name).unwrap_or_else(|| {
                        panic!(
                            "rank {} bin {bin_id}: file {file_name:?} disappeared \
                             before the fused sweep",
                            comm.rank()
                        )
                    });
                    let mut plans = PlanSource::shared(cache, bin_id as u64);
                    let (bytes, report) =
                        collective_read_planned(comm, pfs, &file, fused_req, hints, &mut plans);
                    plans.note_fused_tasks(mine.len() as u64);
                    let cpu = comm.model().cpu.clone();
                    let mut scratch = Vec::new();
                    let mut done = Vec::with_capacity(mine.len());
                    for &t in mine {
                        let task = &tasks[t];
                        comm.advance(cpu.map_time(task.request.total_bytes() as usize));
                        let partial = fold_task_from_fused(
                            t as u64,
                            &task.spec.var,
                            &task.request,
                            fused_req,
                            &bytes,
                            &*task.spec.kernel,
                            &mut scratch,
                        );
                        done.push((t, task.spec.kernel.finalize(&partial), comm.clock()));
                    }
                    (done, report.end, plans.seen())
                })
            };
            let mut end = t0;
            for (done, read_end, seen) in outs {
                end = end.max(read_end);
                plan_stats = plan_stats.merge(&seen);
                for (t, value, finished) in done {
                    end = end.max(finished);
                    let task = &tasks[t];
                    results[t] = Some(TaskResult {
                        id: t as u64,
                        name: task.spec.name.clone(),
                        value,
                        submitted: task.spec.arrival,
                        finished,
                        bin: Some(bin_id),
                    });
                }
            }
            let fstats = fused
                .iter()
                .fold(cc_mpiio::FuseStats::default(), |acc, (_, s)| {
                    cc_mpiio::FuseStats {
                        tasks: acc.tasks + s.tasks,
                        task_extents: acc.task_extents + s.task_extents,
                        task_bytes: acc.task_bytes + s.task_bytes,
                        fused_extents: acc.fused_extents + s.fused_extents,
                        fused_bytes: acc.fused_bytes + s.fused_bytes,
                    }
                });
            bin_reports.push(BinReport {
                bin: bin_id,
                file: bin.file.clone(),
                tasks: bin.tasks.len(),
                start: t0,
                end,
                task_extents: fstats.task_extents,
                fused_extents: fstats.fused_extents,
                task_bytes: fstats.task_bytes,
                fused_bytes: fstats.fused_bytes,
            });
            frontier = end;
        }
        let tasks_out: Vec<TaskResult> = results
            .into_iter()
            .enumerate()
            .map(|(t, r)| {
                r.unwrap_or_else(|| {
                    panic!("task {t}: no bin served it — the binning dropped a task")
                })
            })
            .collect();
        assemble_outcome(tasks_out, bin_reports, &pfs, stats0, busy0, plan_stats)
    }

    /// The thrash baseline: every task reads its own extents directly
    /// (one positioning operation per extent), tasks dealt round-robin
    /// across the batch ranks in arrival order, each served at
    /// `max(rank clock, arrival)`.
    pub fn run_independent(self) -> BatchOutcome {
        let TaskBatch {
            model,
            pfs,
            policy,
            tasks,
            ..
        } = self;
        assert!(
            policy.nprocs <= model.topology.capacity(),
            "batch needs {} ranks but the cluster holds {}",
            policy.nprocs,
            model.topology.capacity()
        );
        let mut order: Vec<usize> = (0..tasks.len()).collect();
        order.sort_by(|&a, &b| {
            tasks[a]
                .spec
                .arrival
                .cmp(&tasks[b].spec.arrival)
                .then(a.cmp(&b))
        });
        let stats0 = pfs.stats();
        let busy0: f64 = pfs.per_ost_busy_secs().iter().sum();
        let world = World::new(policy.nprocs, model.clone());
        let outs = {
            let tasks = &tasks;
            let order = &order;
            let pfs = &*pfs;
            let nprocs = policy.nprocs;
            world.run(move |comm| {
                let cpu = comm.model().cpu.clone();
                let mut scratch = Vec::new();
                let mut done = Vec::new();
                for (i, &t) in order.iter().enumerate() {
                    if i % nprocs != comm.rank() {
                        continue;
                    }
                    let task = &tasks[t];
                    comm.advance_to(comm.clock().max(task.spec.arrival));
                    let file = pfs.open(&task.spec.file).unwrap_or_else(|| {
                        panic!(
                            "rank {} task {t} ({:?}): file {:?} disappeared before \
                             its independent read",
                            comm.rank(),
                            task.spec.name,
                            task.spec.file
                        )
                    });
                    let (bytes, _) = independent_read(comm, pfs, &file, &task.request);
                    comm.advance(cpu.map_time(task.request.total_bytes() as usize));
                    let partial = fold_task_bytes(
                        t as u64,
                        &task.spec.var,
                        &task.request,
                        &bytes,
                        &*task.spec.kernel,
                        &mut scratch,
                    );
                    done.push((t, task.spec.kernel.finalize(&partial), comm.clock()));
                }
                done
            })
        };
        let mut results: Vec<Option<TaskResult>> = (0..tasks.len()).map(|_| None).collect();
        for done in outs {
            for (t, value, finished) in done {
                let task = &tasks[t];
                results[t] = Some(TaskResult {
                    id: t as u64,
                    name: task.spec.name.clone(),
                    value,
                    submitted: task.spec.arrival,
                    finished,
                    bin: None,
                });
            }
        }
        let tasks_out: Vec<TaskResult> = results
            .into_iter()
            .enumerate()
            .map(|(t, r)| {
                r.unwrap_or_else(|| {
                    panic!("task {t}: no rank served it — the round-robin deal dropped a task")
                })
            })
            .collect();
        assemble_outcome(
            tasks_out,
            Vec::new(),
            &pfs,
            stats0,
            busy0,
            PlanCacheStats::default(),
        )
    }

    /// Ground truth: each task alone in a fresh single-rank world at its
    /// arrival time — the execution every fused and independent result
    /// must match bit for bit.
    pub fn run_solo(self) -> BatchOutcome {
        let TaskBatch {
            model, pfs, tasks, ..
        } = self;
        let stats0 = pfs.stats();
        let busy0: f64 = pfs.per_ost_busy_secs().iter().sum();
        let mut tasks_out = Vec::with_capacity(tasks.len());
        for (t, task) in tasks.iter().enumerate() {
            let world = World::new(1, model.clone());
            let pfs_ref = &*pfs;
            let mut outs = world.run(move |comm| {
                comm.advance_to(task.spec.arrival);
                let file = pfs_ref.open(&task.spec.file).unwrap_or_else(|| {
                    panic!(
                        "solo task {t} ({:?}): file {:?} disappeared",
                        task.spec.name, task.spec.file
                    )
                });
                let (bytes, _) = independent_read(comm, pfs_ref, &file, &task.request);
                let cpu = comm.model().cpu.clone();
                comm.advance(cpu.map_time(task.request.total_bytes() as usize));
                let mut scratch = Vec::new();
                let partial = fold_task_bytes(
                    t as u64,
                    &task.spec.var,
                    &task.request,
                    &bytes,
                    &*task.spec.kernel,
                    &mut scratch,
                );
                (task.spec.kernel.finalize(&partial), comm.clock())
            });
            let (value, finished) = outs.pop().unwrap_or_else(|| {
                panic!("solo task {t} ({:?}): world returned no result", task.spec.name)
            });
            tasks_out.push(TaskResult {
                id: t as u64,
                name: task.spec.name.clone(),
                value,
                submitted: task.spec.arrival,
                finished,
                bin: None,
            });
        }
        assemble_outcome(
            tasks_out,
            Vec::new(),
            &pfs,
            stats0,
            busy0,
            PlanCacheStats::default(),
        )
    }
}

/// Groups admitted tasks into bins by `(file, tolerance class)` in
/// arrival order, closing a bin at capacity or when the next compatible
/// task arrives outside the fuse window; closed bins are dispatched in
/// ready order (a bin is ready when its last member has arrived).
fn plan_bins(tasks: &[AdmittedTask], policy: &BatchPolicy) -> Vec<Bin> {
    let mut order: Vec<usize> = (0..tasks.len()).collect();
    order.sort_by(|&a, &b| {
        tasks[a]
            .spec
            .arrival
            .cmp(&tasks[b].spec.arrival)
            .then(a.cmp(&b))
    });
    let mut open: Vec<Bin> = Vec::new();
    let mut closed: Vec<Bin> = Vec::new();
    for t in order {
        let task = &tasks[t];
        let arrival = task.spec.arrival;
        let key = (task.spec.file.as_str(), task.exact);
        if let Some(pos) = open
            .iter()
            .position(|b| (b.file.as_str(), b.exact) == key)
        {
            let full = open[pos].tasks.len() >= policy.max_bin_tasks;
            let late =
                arrival.secs() > open[pos].first_arrival.secs() + policy.fuse_window.secs();
            if !(full || late) {
                let bin = &mut open[pos];
                bin.tasks.push(t);
                bin.ready = bin.ready.max(arrival);
                continue;
            }
            closed.push(open.remove(pos));
        }
        open.push(Bin {
            file: task.spec.file.clone(),
            exact: task.exact,
            tasks: vec![t],
            ready: arrival,
            first_arrival: arrival,
        });
    }
    closed.append(&mut open);
    closed.sort_by(|a, b| {
        a.ready
            .cmp(&b.ready)
            .then(a.first_arrival.cmp(&b.first_arrival))
            .then(a.tasks[0].cmp(&b.tasks[0]))
    });
    closed
}

/// Splits an ordered task list into `n` contiguous near-even chunks (the
/// first `len % n` chunks take one extra task); trailing chunks may be
/// empty when the bin holds fewer tasks than ranks.
fn even_chunks(order: &[usize], n: usize) -> Vec<Vec<usize>> {
    let base = order.len() / n;
    let extra = order.len() % n;
    let mut out = Vec::with_capacity(n);
    let mut at = 0;
    for r in 0..n {
        let mine = base + usize::from(r < extra);
        out.push(order[at..at + mine].to_vec());
        at += mine;
    }
    out
}

/// Builds the outcome from per-task results (already in id order) and the
/// file system's counter deltas over the run.
fn assemble_outcome(
    tasks: Vec<TaskResult>,
    bins: Vec<BinReport>,
    pfs: &Pfs,
    stats0: cc_pfs::PfsStatsSnapshot,
    busy0: f64,
    plan_cache: PlanCacheStats,
) -> BatchOutcome {
    let stats1 = pfs.stats();
    let busy1: f64 = pfs.per_ost_busy_secs().iter().sum();
    let makespan = tasks
        .iter()
        .map(|t| t.finished)
        .max()
        .unwrap_or(SimTime::ZERO);
    let latencies: Vec<SimTime> = tasks.iter().map(TaskResult::latency).collect();
    let latency_p50 = percentile_time(latencies.clone(), 50.0);
    let latency_p99 = percentile_time(latencies, 99.0);
    BatchOutcome {
        tasks,
        bins,
        makespan,
        extents_served: stats1.extents_served - stats0.extents_served,
        bytes_read: stats1.bytes_read - stats0.bytes_read,
        ost_busy_secs: busy1 - busy0,
        latency_p50,
        latency_p99,
        plan_cache,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cc_array::{DType, Shape};
    use cc_core::{MinLocKernel, SumKernel};
    use cc_model::{DiskModel, Topology};
    use cc_pfs::backend::{ElemKind, SyntheticBackend};
    use cc_pfs::StripeLayout;

    fn value(i: u64) -> f64 {
        ((i.wrapping_mul(31) ^ (i >> 3)) % 1009) as f64 - 500.0
    }

    fn cluster(nodes: usize, cores: usize) -> ClusterModel {
        let mut m = ClusterModel::test_tiny(cores);
        m.topology = Topology::new(nodes, cores);
        m
    }

    const ROWS: u64 = 64;
    const COLS: u64 = 32;

    fn fs() -> Arc<Pfs> {
        let fs = Pfs::new(4, DiskModel::lustre_like());
        fs.create(
            "f.nc",
            StripeLayout::round_robin(1 << 10, 4, 0, 4),
            Box::new(SyntheticBackend::new(ROWS * COLS, ElemKind::F64, value)),
        );
        Arc::new(fs)
    }

    fn var() -> Variable {
        Variable::new("v", Shape::new(vec![ROWS, COLS]), DType::F64, 0)
    }

    /// A mix of overlapping, disjoint, and duplicate partial-row regions.
    fn submit_mix(batch: &mut TaskBatch, n: usize) {
        for i in 0..n {
            let row = (i as u64 * 3) % (ROWS - 4);
            let col = (i as u64 * 5) % (COLS / 2);
            let kernel: Arc<dyn MapKernel> = if i % 3 == 0 {
                Arc::new(MinLocKernel)
            } else {
                Arc::new(SumKernel)
            };
            batch
                .submit(TaskSpec::new(
                    format!("t{i}"),
                    "f.nc",
                    var(),
                    vec![row, col],
                    vec![4, COLS / 2],
                    kernel,
                ))
                .unwrap_or_else(|e| panic!("task {i} refused: {e}"));
        }
    }

    fn batch(nprocs: usize) -> TaskBatch {
        TaskBatch::new(cluster(2, 2), fs()).with_policy(BatchPolicy {
            nprocs,
            ..BatchPolicy::default()
        })
    }

    #[test]
    fn admission_rejects_bad_selections() {
        let mut b = batch(2);
        let ok = TaskSpec::new("ok", "f.nc", var(), vec![0, 0], vec![2, 8], Arc::new(SumKernel));
        assert_eq!(
            b.submit(TaskSpec { file: "nope".into(), ..ok.clone() }),
            Err(BatchAdmissionError::UnknownFile("nope".into()))
        );
        assert_eq!(
            b.submit(TaskSpec { start: vec![0], ..ok.clone() }),
            Err(BatchAdmissionError::RankMismatch { task: "ok".into(), got: 2, var_rank: 2 })
        );
        assert_eq!(
            b.submit(TaskSpec { count: vec![0, 8], ..ok.clone() }),
            Err(BatchAdmissionError::EmptySelection { task: "ok".into() })
        );
        assert_eq!(
            b.submit(TaskSpec { start: vec![ROWS - 1, 0], ..ok.clone() }),
            Err(BatchAdmissionError::OutOfBounds {
                task: "ok".into(),
                dim: 0,
                end: ROWS + 1,
                extent: ROWS
            })
        );
        assert_eq!(b.submit(ok), Ok(0));
    }

    #[test]
    fn fused_matches_independent_and_solo_bitwise() {
        let mk = |n| {
            let mut b = batch(3);
            submit_mix(&mut b, n);
            b
        };
        let fused = mk(40).run_fused();
        let indep = mk(40).run_independent();
        let solo = mk(40).run_solo();
        assert_eq!(fused.tasks.len(), 40);
        for ((f, i), s) in fused.tasks.iter().zip(&indep.tasks).zip(&solo.tasks) {
            assert_eq!(f.checksum(), i.checksum(), "task {} fused != independent", f.name);
            assert_eq!(f.checksum(), s.checksum(), "task {} fused != solo", f.name);
            assert!(f.bin.is_some());
            assert!(f.finished >= f.submitted);
        }
        assert_eq!(fused.checksum(), solo.checksum());
        // The mix overlaps heavily: fusion must serve fewer extents.
        assert!(
            fused.extents_served < indep.extents_served,
            "fused {} vs independent {}",
            fused.extents_served,
            indep.extents_served
        );
        // Latency percentiles are populated on both paths.
        assert!(fused.latency_p50 <= fused.latency_p99);
        assert!(indep.latency_p50 <= indep.latency_p99);
        // Every task rode a compiled schedule; the amortization counter
        // says so (2 classes -> 2 bins -> at most 2 compiles for 40 tasks).
        assert_eq!(fused.plan_cache.fused_tasks, 40);
        assert!(fused.tasks_per_schedule() >= 40.0 / 2.0);
        assert_eq!(indep.plan_cache.fused_tasks, 0);
    }

    #[test]
    fn sum_tasks_match_analytic_oracle() {
        let mut b = batch(2);
        b.submit(TaskSpec::new(
            "s",
            "f.nc",
            var(),
            vec![3, 4],
            vec![2, 8],
            Arc::new(SumKernel),
        ))
        .unwrap();
        let out = b.run_fused();
        let mut expect = 0.0;
        for r in 3..5 {
            for c in 4..12 {
                expect += value(r * COLS + c);
            }
        }
        let got = out.tasks[0].value[0];
        assert!((got - expect).abs() <= 1e-9 * expect.abs().max(1.0), "{got} != {expect}");
    }

    #[test]
    fn fuse_window_splits_arrival_waves_into_bins() {
        let mut b = batch(2);
        for w in 0..3u64 {
            for i in 0..4u64 {
                b.submit(
                    TaskSpec::new(
                        format!("w{w}i{i}"),
                        "f.nc",
                        var(),
                        vec![w * 8 + i, 0],
                        vec![2, 8],
                        Arc::new(SumKernel),
                    )
                    .arrival(SimTime::from_secs(w as f64 * 1.0)),
                )
                .unwrap();
            }
        }
        let out = b.run_fused();
        // Window (1 ms) far smaller than wave spacing (1 s): 3 bins.
        assert_eq!(out.bins.len(), 3);
        assert!(out.bins.iter().all(|b| b.tasks == 4));
        // Bins start no earlier than their wave's arrival.
        for (w, bin) in out.bins.iter().enumerate() {
            assert!(bin.start >= SimTime::from_secs(w as f64 * 1.0));
        }
        // No task is served before it arrives.
        for t in &out.tasks {
            assert!(t.finished >= t.submitted);
        }
    }

    #[test]
    fn max_bin_tasks_caps_bin_size() {
        let mut b = TaskBatch::new(cluster(2, 2), fs()).with_policy(BatchPolicy {
            nprocs: 2,
            max_bin_tasks: 5,
            ..BatchPolicy::default()
        });
        for i in 0..12u64 {
            b.submit(TaskSpec::new(
                format!("t{i}"),
                "f.nc",
                var(),
                vec![i, 0],
                vec![1, 8],
                Arc::new(SumKernel),
            ))
            .unwrap();
        }
        let out = b.run_fused();
        assert_eq!(out.bins.len(), 3);
        assert!(out.bins.iter().all(|b| b.tasks <= 5));
        assert_eq!(out.bins.iter().map(|b| b.tasks).sum::<usize>(), 12);
    }

    #[test]
    fn duplicate_regions_are_read_once() {
        let mut b = batch(1);
        for i in 0..8 {
            b.submit(TaskSpec::new(
                format!("dup{i}"),
                "f.nc",
                var(),
                vec![10, 0],
                vec![2, COLS],
                Arc::new(SumKernel),
            ))
            .unwrap();
        }
        let out = b.run_fused();
        let bin = &out.bins[0];
        assert_eq!(bin.task_bytes, 8 * 2 * COLS * 8);
        assert_eq!(bin.fused_bytes, 2 * COLS * 8, "duplicates must dedup to one copy");
        // All 8 identical results.
        let first = out.tasks[0].checksum();
        assert!(out.tasks.iter().all(|t| t.checksum() == first));
    }
}
