//! Multi-job collective service: a shared-cluster scheduler in front of
//! the collective-computing engines.
//!
//! One simulated cluster rarely runs one analysis at a time. This crate
//! admits, places, and runs N concurrent collective jobs over a single
//! shared [`cc_pfs::Pfs`], an optional shared backbone lane, and one
//! process-wide [`cc_mpiio::SharedPlanCache`]:
//!
//! * **Admission and placement** — a [`JobSpec`] names a file, a variable,
//!   a sweep of hyperslab steps, a rank count, an arrival time, and a QoS
//!   class; [`Service::submit`] validates it and [`Service::run`] carves
//!   whole nodes out of the cluster for each job (backfilled, so small
//!   jobs slip past wide ones waiting for nodes).
//! * **A virtual-time event loop** — jobs execute one collective iteration
//!   at a time, each step placed at the job's own virtual frontier via
//!   `Comm::advance_to`, so concurrent jobs contend for OST intervals and
//!   backbone bandwidth exactly where their demand windows overlap, while
//!   the bytes each job moves stay untouched: every job's result is
//!   bit-identical to its solo run under every policy.
//! * **Cross-job plan reuse** — jobs issuing the same hyperslab shapes hit
//!   one compiled schedule in the shared cache; per-job and cross-job
//!   counters ride in each [`JobResult`].
//! * **Fairness and QoS** — [`ServicePolicy::QosWfq`] steps interactive
//!   jobs first and weighted-fair-queues batch jobs over attributed OST
//!   busy-time; FIFO and round-robin are the baselines.
//! * **Many-task request fusion** — [`TaskBatch`] admits thousands of
//!   tiny independent analysis tasks, bins them by file and kernel
//!   class, union-merges each bin's extents, and serves every bin with
//!   one shared collective sweep — per-task results bit-identical to
//!   solo execution, per-task latency attributed through the batch.

#![warn(missing_docs)]

pub mod batch;
pub mod job;
pub mod service;

pub use batch::{
    BatchAdmissionError, BatchOutcome, BatchPolicy, BinReport, TaskBatch, TaskResult, TaskSpec,
};
pub use job::{AdmissionError, JobHandle, JobResult, JobSpec, QosClass, StepSpec};
pub use service::{percentile_time, Service, ServiceOutcome, ServicePolicy};
