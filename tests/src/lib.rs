//! Shared helpers for the cross-crate integration tests.

use std::sync::Arc;

use cc_array::{DType, Hyperslab, Shape, Variable};
use cc_model::{ClusterModel, DiskModel, Topology};
use cc_pfs::backend::{ElemKind, SyntheticBackend};
use cc_pfs::{Pfs, StripeLayout};

/// The deterministic element value used across the integration tests.
pub fn test_value(i: u64) -> f64 {
    ((i.wrapping_mul(31) ^ (i >> 3)) % 1009) as f64 - 500.0
}

/// Builds a file system with one `f64` variable of the given shape, valued
/// by [`test_value`], striped `stripe_size` x `stripe_count`.
pub fn build_var_fs(
    shape: &Shape,
    stripe_size: u64,
    stripe_count: usize,
    total_osts: usize,
) -> (Arc<Pfs>, Variable) {
    let fs = Pfs::new(total_osts, DiskModel::lustre_like());
    let var = Variable::new("v", shape.clone(), DType::F64, 0);
    fs.create(
        "t.nc",
        StripeLayout::round_robin(stripe_size, stripe_count, 0, total_osts),
        Box::new(SyntheticBackend::new(
            shape.num_elements(),
            ElemKind::F64,
            test_value,
        )),
    );
    (Arc::new(fs), var)
}

/// A test cluster model with `nodes * cores` rank slots and fast wire
/// speeds (tests assert data correctness and invariants, not timings).
pub fn test_model(nodes: usize, cores: usize) -> ClusterModel {
    let mut m = ClusterModel::test_tiny(1);
    m.topology = Topology::new(nodes, cores);
    m
}

/// Sums [`test_value`] over a hyperslab directly (oracle).
pub fn oracle_sum(shape: &Shape, slab: &Hyperslab) -> f64 {
    slab.runs(shape)
        .flat_map(|(s, l)| s..s + l)
        .map(test_value)
        .sum()
}

/// Minimum of [`test_value`] over a hyperslab with its element index
/// (ties to the lowest index), directly.
pub fn oracle_min_loc(shape: &Shape, slab: &Hyperslab) -> (f64, u64) {
    let mut best = (f64::INFINITY, u64::MAX);
    for (s, l) in slab.runs(shape) {
        for i in s..s + l {
            let v = test_value(i);
            if v < best.0 {
                best = (v, i);
            }
        }
    }
    best
}

/// Asserts two floats agree to relative 1e-9.
pub fn assert_close(a: f64, b: f64, what: &str) {
    assert!(
        (a - b).abs() <= 1e-9 * a.abs().max(1.0),
        "{what}: {a} != {b}"
    );
}
