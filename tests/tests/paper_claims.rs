//! The paper's headline claims as (scaled-down, deterministic) tests.
//! These are the assertions EXPERIMENTS.md reports at full scale, pinned
//! at a small scale so regressions in the engines or models show up in
//! `cargo test`.

use cc_bench::{calibrate_ratio, run_comparison};
use cc_core::SumKernel;
use cc_model::ClusterModel;
use cc_mpiio::Hints;
use cc_workloads::ClimateWorkload;

fn setup() -> (ClimateWorkload, ClusterModel, Hints) {
    // 8 ranks, 2 nodes, finely interleaved requests, several chunks per
    // aggregator — a miniature of the Fig. 9 configuration.
    let workload = ClimateWorkload::interleaved_3d(8, 32, 2, 256, 64 << 10, 32);
    let model = ClusterModel::hopper_like(2, 4);
    let hints = Hints {
        cb_buffer_size: 256 << 10,
        aggregators_per_node: 1,
        nonblocking: true,
        align_domains_to: Some(workload.stripe_size),
        ..Hints::default()
    };
    (workload, model, hints)
}

fn speedup_at(ratio: f64) -> f64 {
    let (workload, base, hints) = setup();
    let model = calibrate_ratio(&workload, &base, 64, &hints, ratio);
    run_comparison(&workload, &model, 64, &SumKernel, &hints).speedup()
}

#[test]
fn collective_computing_wins_at_every_ratio() {
    // Fig. 9's baseline claim: CC never loses across the sweep.
    for ratio in [5.0, 1.0, 0.2] {
        let s = speedup_at(ratio);
        assert!(
            s > 1.0,
            "CC should beat traditional MPI at ratio {ratio}: got {s:.3}"
        );
    }
}

#[test]
fn speedup_peaks_at_balanced_ratio() {
    // Fig. 9's shape: the 1:1 point tops both a compute-heavy and an
    // I/O-heavy point.
    let peak = speedup_at(1.0);
    let compute_heavy = speedup_at(5.0);
    let io_heavy = speedup_at(0.2);
    assert!(
        peak > compute_heavy,
        "peak {peak:.3} should beat compute-heavy {compute_heavy:.3}"
    );
    assert!(
        peak > io_heavy,
        "peak {peak:.3} should beat I/O-heavy {io_heavy:.3}"
    );
    assert!(peak > 1.3, "balanced-ratio speedup {peak:.3} is too small");
}

#[test]
fn metadata_halves_from_small_to_large_buffers() {
    // Fig. 12's mechanism: when logical subsets are larger than the
    // collective buffer they get split across iterations, multiplying the
    // metadata. Contiguous 512 KB per-rank subsets make that visible.
    let workload = ClimateWorkload::synthetic_3d(8, 1, 64, 1024, 64, 1024, 64 << 10, 32);
    let model = ClusterModel::hopper_like(2, 4);
    let entries = |cb: u64| {
        let hints = Hints {
            cb_buffer_size: cb,
            ..Hints::default()
        };
        run_comparison(&workload, &model, 64, &SumKernel, &hints).metadata_entries
    };
    let small = entries(64 << 10);
    let large = entries(1 << 20);
    assert!(
        small >= 2 * large,
        "small buffers should at least double metadata: {small} vs {large}"
    );
}
