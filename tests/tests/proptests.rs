//! Property tests across the full stack: random selections, stripings,
//! buffer sizes, and rank counts must all produce oracle-exact results.

use cc_array::Shape;
use cc_core::{object_get_vara, MinLocKernel, ObjectIo, ReduceMode, SumKernel};
use cc_integration::{build_var_fs, oracle_min_loc, test_model, test_value};
use cc_mpi::World;
use cc_mpiio::{collective_read, Hints, OffsetList};
use proptest::prelude::*;

/// A derived, always-valid configuration: shape, per-rank row split,
/// striping, buffer size.
#[derive(Debug, Clone)]
struct Config {
    shape: Shape,
    nprocs: usize,
    stripe_size: u64,
    stripe_count: usize,
    cb: u64,
}

fn arb_config() -> impl Strategy<Value = Config> {
    (
        1usize..5,                          // nprocs as divisor index
        proptest::collection::vec(1u64..7, 1..3), // extra dims
        6u64..12,                           // log2 stripe size
        1usize..5,                          // stripe count
        5u64..13,                           // log2 cb
    )
        .prop_map(|(np, extra, stripe_log, sc, cb_log)| {
            let nprocs = np; // 1..4
            let mut dims = vec![nprocs as u64 * 2]; // rows divisible
            dims.extend(extra.iter().map(|&d| d * 4));
            Config {
                shape: Shape::new(dims),
                nprocs,
                stripe_size: 1 << stripe_log,
                stripe_count: sc,
                cb: 1 << cb_log,
            }
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn prop_cc_sum_matches_oracle(cfg in arb_config()) {
        let (fs, var) = build_var_fs(&cfg.shape, cfg.stripe_size, cfg.stripe_count, 8);
        let world = World::new(cfg.nprocs, test_model(1, cfg.nprocs));
        let per = cfg.shape.dims()[0] / cfg.nprocs as u64;
        let fs = &fs;
        let var = &var;
        let cfg_ref = &cfg;
        let results = world.run(move |comm| {
            let file = fs.open("t.nc").expect("exists");
            let mut start = vec![0; cfg_ref.shape.rank()];
            let mut count = cfg_ref.shape.dims().to_vec();
            start[0] = comm.rank() as u64 * per;
            count[0] = per;
            let io = ObjectIo::new(start, count).hints(Hints {
                cb_buffer_size: cfg_ref.cb,
                ..Hints::default()
            });
            object_get_vara(comm, fs, &file, var, &io, &SumKernel)
        });
        let got = results.into_iter().find_map(|o| o.global).expect("root")[0];
        let expect: f64 = (0..cfg.shape.num_elements()).map(test_value).sum();
        prop_assert!((got - expect).abs() <= 1e-9 * expect.abs().max(1.0),
            "{got} != {expect}");
    }

    #[test]
    fn prop_cc_minloc_matches_oracle(cfg in arb_config()) {
        let (fs, var) = build_var_fs(&cfg.shape, cfg.stripe_size, cfg.stripe_count, 8);
        let world = World::new(cfg.nprocs, test_model(1, cfg.nprocs));
        let per = cfg.shape.dims()[0] / cfg.nprocs as u64;
        let fs = &fs;
        let var = &var;
        let cfg_ref = &cfg;
        let results = world.run(move |comm| {
            let file = fs.open("t.nc").expect("exists");
            let mut start = vec![0; cfg_ref.shape.rank()];
            let mut count = cfg_ref.shape.dims().to_vec();
            start[0] = comm.rank() as u64 * per;
            count[0] = per;
            let io = ObjectIo::new(start, count)
                .hints(Hints { cb_buffer_size: cfg_ref.cb, ..Hints::default() })
                .reduce(ReduceMode::AllToAll { root: 0 });
            object_get_vara(comm, fs, &file, var, &io, &MinLocKernel)
        });
        let got = results.into_iter().find_map(|o| o.global).expect("root");
        let (ev, ei) = oracle_min_loc(
            &cfg.shape,
            &cc_array::Hyperslab::whole(&cfg.shape),
        );
        prop_assert_eq!(got[0], ev);
        prop_assert_eq!(got[1], ei as f64);
    }

    #[test]
    fn prop_collective_read_returns_exact_bytes(
        cfg in arb_config(),
        seed in any::<u64>(),
    ) {
        // Random non-overlapping extents per rank (derived from the seed),
        // read through the full two-phase engine, compared byte-for-byte
        // against the backend.
        let (fs, var) = build_var_fs(&cfg.shape, cfg.stripe_size, cfg.stripe_count, 8);
        let size = var.size_bytes();
        let world = World::new(cfg.nprocs, test_model(1, cfg.nprocs));
        let fs = &fs;
        let cfg_ref = &cfg;
        let ok = world.run(move |comm| {
            // Rank r takes every nprocs-th 16-byte block, offset by rank,
            // pseudo-shifted by the seed.
            let mut extents = Vec::new();
            let block = 16u64;
            let shift = (seed % 4) * 4;
            let mut pos = comm.rank() as u64 * block + shift;
            while pos + block <= size {
                extents.push(cc_mpiio::Extent { offset: pos, len: block });
                pos += block * cfg_ref.nprocs as u64 * 2;
            }
            let request = OffsetList::new(extents);
            let file = fs.open("t.nc").expect("exists");
            let (bytes, _) = collective_read(comm, fs, &file, &request, &Hints {
                cb_buffer_size: cfg_ref.cb,
                ..Hints::default()
            });
            // Compare against the backend directly.
            let mut expect = vec![0u8; request.total_bytes() as usize];
            let mut cursor = 0;
            for e in request.extents() {
                let mut piece = vec![0u8; e.len as usize];
                read_backend(fs, e.offset, &mut piece);
                expect[cursor..cursor + e.len as usize].copy_from_slice(&piece);
                cursor += e.len as usize;
            }
            bytes == expect
        });
        prop_assert!(ok.iter().all(|&b| b), "some rank got wrong bytes");
    }
}

/// Reads the raw backend bytes (bypassing timing) for comparison.
fn read_backend(fs: &cc_pfs::Pfs, offset: u64, buf: &mut [u8]) {
    let file = fs.open("t.nc").expect("exists");
    let (bytes, _) = fs.read_at(&file, offset, buf.len() as u64, cc_model::SimTime::ZERO);
    buf.copy_from_slice(&bytes);
}
