//! Integration tests for the extensions beyond the paper's core: the
//! collective write path, kernel fusion, automatic strategy selection,
//! and iterative sweeps — all exercised across crates.

use cc_array::{get_vara_all, put_vara_all, Hyperslab, Shape};
use cc_core::{
    iterative_get_vara, object_get_vara, FusedKernel, MaxKernel, MeanKernel, MinLocKernel,
    ObjectIo, ReduceMode, SumKernel,
};
use cc_integration::{assert_close, build_var_fs, test_model, test_value};
use cc_mpi::World;
use cc_mpiio::{collective_read_auto, AutoReport, Hints};

#[test]
fn fused_kernel_through_the_full_engine() {
    // One collective pass computing sum, max, mean, and min-location must
    // agree with four separate passes.
    let shape = Shape::new(vec![8, 40]);
    let (fs, var) = build_var_fs(&shape, 1024, 4, 8);
    let world = World::new(4, test_model(2, 2));
    let fs = &fs;
    let var = &var;
    let results = world.run(move |comm| {
        let file = fs.open("t.nc").expect("exists");
        let io = ObjectIo::new(vec![2 * comm.rank() as u64, 0], vec![2, 40])
            .reduce(ReduceMode::AllToOne { root: 0 });
        let fused = FusedKernel::new(vec![&SumKernel, &MaxKernel, &MeanKernel, &MinLocKernel]);
        let one_pass = object_get_vara(comm, fs, &file, var, &io, &fused);
        let seperate: Vec<_> = [
            &SumKernel as &dyn cc_core::MapKernel,
            &MaxKernel,
            &MeanKernel,
            &MinLocKernel,
        ]
        .iter()
        .map(|k| object_get_vara(comm, fs, &file, var, &io, *k).global)
        .collect();
        (
            one_pass
                .global_partial
                .map(|p| fused.finalize_each(&p)),
            seperate,
            one_pass.report.bytes_read,
        )
    });
    let fused_results = results[0].0.as_ref().expect("root result");
    for (i, sep) in results[0].1.iter().enumerate() {
        let sep = sep.as_ref().expect("root result");
        for (a, b) in fused_results[i].iter().zip(sep) {
            assert_close(*a, *b, &format!("fused component {i}"));
        }
    }
}

#[test]
fn fused_pass_reads_quarter_the_bytes() {
    let shape = Shape::new(vec![4, 64]);
    let (fs, var) = build_var_fs(&shape, 1024, 4, 8);
    let world = World::new(4, test_model(1, 4));
    let fs = &fs;
    let var = &var;
    let results = world.run(move |comm| {
        let file = fs.open("t.nc").expect("exists");
        let io = ObjectIo::new(vec![comm.rank() as u64, 0], vec![1, 64]);
        let fused = FusedKernel::new(vec![&SumKernel, &MaxKernel, &MeanKernel, &MinLocKernel]);
        let one = object_get_vara(comm, fs, &file, var, &io, &fused)
            .report
            .bytes_read;
        let four: u64 = (0..4)
            .map(|_| {
                object_get_vara(comm, fs, &file, var, &io, &SumKernel)
                    .report
                    .bytes_read
            })
            .sum();
        (one, four)
    });
    let one: u64 = results.iter().map(|r| r.0).sum();
    let four: u64 = results.iter().map(|r| r.1).sum();
    assert_eq!(four, 4 * one, "separate passes re-read the data");
}

#[test]
fn collective_write_through_array_layer_and_read_back_via_cc() {
    // put_vara_all writes; the CC engine then analyzes what was written.
    let shape = Shape::new(vec![8, 32]);
    let fs = cc_pfs::Pfs::new(4, cc_model::DiskModel::lustre_like());
    fs.create(
        "t.nc",
        cc_pfs::StripeLayout::round_robin(512, 4, 0, 4),
        Box::new(cc_pfs::MemBackend::zeroed(8 * 32 * 8)),
    );
    let fs = std::sync::Arc::new(fs);
    let var = cc_array::Variable::new("v", shape.clone(), cc_array::DType::F64, 0);
    let world = World::new(4, test_model(2, 2));
    let fs = &fs;
    let var = &var;
    let results = world.run(move |comm| {
        let file = fs.open("t.nc").expect("exists");
        let slab = Hyperslab::new(vec![2 * comm.rank() as u64, 0], vec![2, 32]);
        // Each rank writes values derived from the element index.
        let values: Vec<f64> = slab
            .runs(var.shape())
            .flat_map(|(s, l)| s..s + l)
            .map(|i| (i * 3) as f64)
            .collect();
        put_vara_all(comm, fs, &file, var, &slab, &values, &Hints::default());
        comm.barrier();
        // Read it back plainly and analyze it with the CC engine.
        let (back, _) = get_vara_all(comm, fs, &file, var, &slab, &Hints::default());
        let io = ObjectIo::new(vec![2 * comm.rank() as u64, 0], vec![2, 32]);
        let out = object_get_vara(comm, fs, &file, var, &io, &SumKernel);
        (back == values, out.global)
    });
    assert!(results.iter().all(|r| r.0), "roundtrip data mismatch");
    let expect: f64 = (0..256u64).map(|i| (i * 3) as f64).sum();
    assert_close(
        results[0].1.as_ref().expect("root result")[0],
        expect,
        "CC over written data",
    );
}

#[test]
fn auto_mode_and_manual_modes_agree_on_data() {
    let shape = Shape::new(vec![8, 16]);
    let (fs, var) = build_var_fs(&shape, 512, 4, 8);
    let world = World::new(4, test_model(2, 2));
    let fs = &fs;
    let var = &var;
    let results = world.run(move |comm| {
        let file = fs.open("t.nc").expect("exists");
        // Disjoint row blocks: the heuristic should go independent.
        let slab = Hyperslab::new(vec![2 * comm.rank() as u64, 0], vec![2, 16]);
        let request = var.byte_extents(&slab);
        let (auto_bytes, rep) =
            collective_read_auto(comm, fs, &file, &request, &Hints::default());
        let (manual, _) = cc_mpiio::collective_read(comm, fs, &file, &request, &Hints::default());
        (
            auto_bytes == manual,
            matches!(rep, AutoReport::Independent(_)),
        )
    });
    assert!(results.iter().all(|r| r.0), "auto data mismatch");
    assert!(results.iter().all(|r| r.1), "disjoint should be independent");
}

#[test]
fn strided_selection_through_collective_read() {
    // ncmpi_get_vars-style subsampling: every other lat row, every third
    // lon column, through the full two-phase engine.
    let shape = Shape::new(vec![4, 8, 9]);
    let (fs, var) = build_var_fs(&shape, 256, 4, 8);
    let world = World::new(4, test_model(2, 2));
    let fs = &fs;
    let var = &var;
    let ok = world.run(move |comm| {
        // Rank r takes time step r, lat rows 0,2,4,6, lon cols 0,3,6.
        let slab = cc_array::StridedSlab::new(
            vec![comm.rank() as u64, 0, 0],
            vec![1, 4, 3],
            vec![1, 2, 3],
        );
        let request = var.byte_extents_strided(&slab);
        let file = fs.open("t.nc").expect("exists");
        let (bytes, _) =
            cc_mpiio::collective_read(comm, fs, &file, &request, &Hints::default());
        let got = var.dtype().decode(&bytes);
        // Oracle: enumerate the lattice directly.
        let mut expect = Vec::new();
        for (start, len) in slab.runs(var.shape()) {
            for i in start..start + len {
                expect.push(test_value(i));
            }
        }
        got == expect
    });
    assert!(ok.iter().all(|&b| b), "strided read data mismatch");
}

#[test]
fn iterative_sweep_with_mean_kernel_folds_correctly() {
    // Mean cannot be folded from finalized outputs — this exercises the
    // global_partial plumbing end to end.
    let shape = Shape::new(vec![6, 20]);
    let (fs, var) = build_var_fs(&shape, 512, 2, 4);
    let world = World::new(2, test_model(1, 2));
    let fs = &fs;
    let var = &var;
    let results = world.run(move |comm| {
        let file = fs.open("t.nc").expect("exists");
        let steps: Vec<_> = (0..3u64)
            .map(|s| {
                (
                    var,
                    ObjectIo::new(vec![s * 2 + comm.rank() as u64, 0], vec![1, 20]),
                )
            })
            .collect();
        iterative_get_vara(comm, fs, &file, &steps, &MeanKernel)
    });
    let expect: f64 = (0..120u64).map(test_value).sum::<f64>() / 120.0;
    assert_close(
        results[0].global.as_ref().expect("root folded")[0],
        expect,
        "folded mean",
    );
    // Naively averaging the step means would coincide here (equal step
    // sizes), so also check the per-step values are true step means.
    let steps = results[0].per_step.as_ref().expect("per-step");
    for (s, step) in steps.iter().enumerate() {
        let lo = s as u64 * 40;
        let step_mean: f64 = (lo..lo + 40).map(test_value).sum::<f64>() / 40.0;
        assert_close(step[0], step_mean, &format!("step {s} mean"));
    }
}
