//! Fault injection through the full stack: transient read failures are
//! retried by the file system, results stay exact, and the retries cost
//! virtual time — the substrate for the paper's "investigate fault
//! tolerance" future work.

use cc_array::Shape;
use cc_core::{object_get_vara, ObjectIo, SumKernel};
use cc_integration::{assert_close, test_model, test_value};
use cc_model::{DiskModel, SimTime};
use cc_mpi::World;
use cc_pfs::backend::{ElemKind, SyntheticBackend};
use cc_pfs::{FaultPlan, Pfs, StripeLayout};
use std::sync::Arc;

fn faulty_fs(fail_every: u64, elems: u64) -> Arc<Pfs> {
    let fs = Pfs::new(4, DiskModel::lustre_like()).with_fault(FaultPlan::every(
        fail_every,
        SimTime::from_secs(0.05),
        10,
    ));
    fs.create(
        "t.nc",
        StripeLayout::round_robin(1024, 4, 0, 4),
        Box::new(SyntheticBackend::new(elems, ElemKind::F64, test_value)),
    );
    Arc::new(fs)
}

#[test]
fn results_survive_transient_read_faults() {
    let shape = Shape::new(vec![4, 64]);
    let var = cc_array::Variable::new("v", shape.clone(), cc_array::DType::F64, 0);
    let fs = faulty_fs(2, 256); // every second read attempt fails once
    let world = World::new(4, test_model(2, 2));
    let fs_ref = &fs;
    let var = &var;
    let results = world.run(move |comm| {
        let file = fs_ref.open("t.nc").expect("exists");
        let io = ObjectIo::new(vec![comm.rank() as u64, 0], vec![1, 64]).hints(
            cc_mpiio::Hints {
                cb_buffer_size: 256, // several chunks -> several read attempts
                ..cc_mpiio::Hints::default()
            },
        );
        object_get_vara(comm, fs_ref, &file, var, &io, &SumKernel)
    });
    let expect: f64 = (0..256).map(test_value).sum();
    assert_close(
        results.into_iter().find_map(|o| o.global).expect("root")[0],
        expect,
        "sum under faults",
    );
    let plan = fs.fault().expect("plan installed");
    assert!(plan.retries() > 0, "faults should actually have fired");
}

#[test]
fn faults_cost_virtual_time() {
    let shape = Shape::new(vec![4, 64]);
    let var = cc_array::Variable::new("v", shape.clone(), cc_array::DType::F64, 0);
    let run = |fail_every: Option<u64>| {
        let fs = match fail_every {
            Some(k) => faulty_fs(k, 256),
            None => {
                let fs = Pfs::new(4, DiskModel::lustre_like());
                fs.create(
                    "t.nc",
                    StripeLayout::round_robin(1024, 4, 0, 4),
                    Box::new(SyntheticBackend::new(256, ElemKind::F64, test_value)),
                );
                Arc::new(fs)
            }
        };
        let world = World::new(4, test_model(2, 2));
        let fs = &fs;
        let var = &var;
        let ends = world.run(move |comm| {
            let file = fs.open("t.nc").expect("exists");
            let io = ObjectIo::new(vec![comm.rank() as u64, 0], vec![1, 64]);
            object_get_vara(comm, fs, &file, var, &io, &SumKernel)
                .report
                .end
        });
        ends.into_iter().max().expect("nonempty")
    };
    let clean = run(None);
    let faulty = run(Some(2));
    assert!(
        faulty > clean,
        "faulty run {faulty} should cost more than clean {clean}"
    );
}

#[test]
#[should_panic]
fn permanent_failure_aborts() {
    // fail_every = 1: every attempt fails; retries exhaust.
    let fs = Pfs::new(1, DiskModel::lustre_like()).with_fault(FaultPlan::every(
        1,
        SimTime::from_secs(0.01),
        3,
    ));
    fs.create(
        "t.nc",
        StripeLayout::round_robin(1024, 1, 0, 1),
        Box::new(SyntheticBackend::new(16, ElemKind::F64, test_value)),
    );
    let file = fs.open("t.nc").expect("exists");
    let _ = fs.read_at(&file, 0, 64, SimTime::ZERO);
}
