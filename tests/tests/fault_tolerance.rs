//! Fault injection through the full stack: transient read failures are
//! retried by the file system, results stay exact, and the retries cost
//! virtual time — the substrate for the paper's "investigate fault
//! tolerance" future work. Persistent degradation (slow OSTs, bad links)
//! comes from [`cc_model::FaultPlan`], and run supervision turns a rank
//! panic mid-collective into a prompt, attributed world abort.

use cc_array::Shape;
use cc_core::{object_get_vara, ObjectIo, SumKernel};
use cc_integration::{assert_close, test_model, test_value};
use cc_model::{DiskModel, FaultPlan, SimTime};
use cc_mpi::World;
use cc_mpiio::{collective_read, Hints, OffsetList};
use cc_pfs::backend::{ElemKind, SyntheticBackend};
use cc_pfs::{Pfs, RetryPlan, StripeLayout};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Arc;
use std::time::{Duration, Instant};

fn faulty_fs(fail_every: u64, elems: u64) -> Arc<Pfs> {
    let fs = Pfs::new(4, DiskModel::lustre_like()).with_retries(RetryPlan::every(
        fail_every,
        SimTime::from_secs(0.05),
        10,
    ));
    fs.create(
        "t.nc",
        StripeLayout::round_robin(1024, 4, 0, 4),
        Box::new(SyntheticBackend::new(elems, ElemKind::F64, test_value)),
    );
    Arc::new(fs)
}

#[test]
fn results_survive_transient_read_faults() {
    let shape = Shape::new(vec![4, 64]);
    let var = cc_array::Variable::new("v", shape.clone(), cc_array::DType::F64, 0);
    let fs = faulty_fs(2, 256); // every second read attempt fails once
    let world = World::new(4, test_model(2, 2));
    let fs_ref = &fs;
    let var = &var;
    let results = world.run(move |comm| {
        let file = fs_ref.open("t.nc").expect("exists");
        let io = ObjectIo::new(vec![comm.rank() as u64, 0], vec![1, 64]).hints(
            cc_mpiio::Hints {
                cb_buffer_size: 256, // several chunks -> several read attempts
                ..cc_mpiio::Hints::default()
            },
        );
        object_get_vara(comm, fs_ref, &file, var, &io, &SumKernel)
    });
    let expect: f64 = (0..256).map(test_value).sum();
    assert_close(
        results.into_iter().find_map(|o| o.global).expect("root")[0],
        expect,
        "sum under faults",
    );
    let plan = fs.retry_plan().expect("plan installed");
    assert!(plan.retries() > 0, "faults should actually have fired");
}

#[test]
fn faults_cost_virtual_time() {
    let shape = Shape::new(vec![4, 64]);
    let var = cc_array::Variable::new("v", shape.clone(), cc_array::DType::F64, 0);
    let run = |fail_every: Option<u64>| {
        let fs = match fail_every {
            Some(k) => faulty_fs(k, 256),
            None => {
                let fs = Pfs::new(4, DiskModel::lustre_like());
                fs.create(
                    "t.nc",
                    StripeLayout::round_robin(1024, 4, 0, 4),
                    Box::new(SyntheticBackend::new(256, ElemKind::F64, test_value)),
                );
                Arc::new(fs)
            }
        };
        let world = World::new(4, test_model(2, 2));
        let fs = &fs;
        let var = &var;
        let ends = world.run(move |comm| {
            let file = fs.open("t.nc").expect("exists");
            let io = ObjectIo::new(vec![comm.rank() as u64, 0], vec![1, 64]);
            object_get_vara(comm, fs, &file, var, &io, &SumKernel)
                .report
                .end
        });
        ends.into_iter().max().expect("nonempty")
    };
    let clean = run(None);
    let faulty = run(Some(2));
    assert!(
        faulty > clean,
        "faulty run {faulty} should cost more than clean {clean}"
    );
}

/// A plain byte file striped over 4 OSTs, value = offset % 251.
fn byte_fs(size: usize) -> Arc<Pfs> {
    make_byte_fs(size, None)
}

fn make_byte_fs(size: usize, plan: Option<&FaultPlan>) -> Arc<Pfs> {
    let mut fs = Pfs::new(4, DiskModel::lustre_like());
    if let Some(p) = plan {
        fs = fs.with_fault_plan(p);
    }
    let data: Vec<u8> = (0..size).map(|i| (i % 251) as u8).collect();
    fs.create(
        "raw",
        StripeLayout::round_robin(1024, 4, 0, 4),
        Box::new(cc_pfs::MemBackend::from_bytes(data)),
    );
    Arc::new(fs)
}

#[test]
fn rank_panic_mid_collective_aborts_world_quickly() {
    // Rank 2 dies between the request exchange and its shuffle receives;
    // the other ranks are left waiting on pieces that will never arrive.
    // The supervisor must unwind them and surface rank 2's panic well
    // under 5 s of wall clock — not after the 30 s test watchdog.
    let n = 4;
    let fs = byte_fs(8192);
    let t0 = Instant::now();
    let world = World::new(n, test_model(2, 2));
    let fs = &fs;
    let result = catch_unwind(AssertUnwindSafe(|| {
        world.run(move |comm| {
            let file = fs.open("raw").expect("exists");
            let req = OffsetList::contiguous(comm.rank() as u64 * 2048, 2048);
            if comm.rank() == 2 {
                // Join the request exchange so peers build a plan that
                // includes us, then die before serving our role in it.
                let _ = cc_mpiio::exchange::exchange_requests(comm, &req);
                panic!("rank 2 lost its marbles");
            }
            collective_read(comm, fs, &file, &req, &Hints::default()).0
        })
    }));
    let elapsed = t0.elapsed();
    let payload = result.expect_err("the world must abort");
    let msg = payload
        .downcast_ref::<String>()
        .cloned()
        .or_else(|| payload.downcast_ref::<&str>().map(|s| s.to_string()))
        .unwrap_or_default();
    assert!(
        msg.contains("rank 2 panicked: rank 2 lost its marbles"),
        "abort must name the originating rank, got: {msg}"
    );
    assert!(
        elapsed < Duration::from_secs(5),
        "abort took {elapsed:?}; the supervisor should beat the watchdog"
    );
}

#[test]
fn slow_ost_shifts_collective_read_timings_not_data() {
    // ISSUE acceptance: an injected 10x slow OST measurably shifts the
    // TwoPhaseReport read timings while the returned data stays bit-exact.
    let n = 4;
    let run = |plan: Option<FaultPlan>| {
        let fs = make_byte_fs(16384, plan.as_ref());
        let world = World::new(n, test_model(2, 2));
        let fs = &fs;
        world.run(move |comm| {
            let file = fs.open("raw").expect("exists");
            let req = OffsetList::contiguous(comm.rank() as u64 * 4096, 4096);
            collective_read(comm, fs, &file, &req, &Hints::default())
        })
    };
    let healthy = run(None);
    let degraded = run(Some(FaultPlan::new().slow_ost(0, 10.0)));
    for (r, (h, d)) in healthy.iter().zip(&degraded).enumerate() {
        assert_eq!(h.0, d.0, "rank {r}: data must be bit-exact under the fault");
        let expect: Vec<u8> = (r as u64 * 4096..(r as u64 + 1) * 4096)
            .map(|i| (i % 251) as u8)
            .collect();
        assert_eq!(d.0, expect, "rank {r}: data must match the oracle");
    }
    let read_total = |results: &[(Vec<u8>, cc_mpiio::TwoPhaseReport)]| -> SimTime {
        results.iter().map(|(_, rep)| rep.read_total()).sum()
    };
    assert!(
        read_total(&degraded) > read_total(&healthy),
        "slow OST must shift read timings: healthy {} degraded {}",
        read_total(&healthy),
        read_total(&degraded)
    );
}

#[test]
fn link_delay_fault_slows_the_shuffle() {
    let n = 4;
    let run = |model: cc_model::ClusterModel| {
        let fs = byte_fs(16384);
        let world = World::new(n, model);
        let fs = &fs;
        world.run(move |comm| {
            let file = fs.open("raw").expect("exists");
            let req = OffsetList::contiguous(comm.rank() as u64 * 4096, 4096);
            collective_read(comm, fs, &file, &req, &Hints::default()).1.end
        })
    };
    let healthy = run(test_model(2, 2));
    let delayed = run(test_model(2, 2).with_fault(FaultPlan::new().delay_all_links(0.5)));
    let end = |ends: &[SimTime]| ends.iter().copied().max().unwrap();
    assert!(
        end(&delayed) > end(&healthy) + SimTime::from_secs(0.4),
        "injected link delay must surface in the collective's end time: \
         healthy {} delayed {}",
        end(&healthy),
        end(&delayed)
    );
}

#[test]
fn results_stay_exact_under_combined_faults() {
    // Degraded OST + link jitter + a straggler, all at once: virtual time
    // stretches but the reduction over the data is still bit-exact.
    let shape = Shape::new(vec![4, 64]);
    let var = cc_array::Variable::new("v", shape.clone(), cc_array::DType::F64, 0);
    let plan = FaultPlan::new()
        .slow_ost(1, 8.0)
        .jitter(2e-3, 7)
        .straggle_rank(3, 3.0);
    let fs = {
        let fs = Pfs::new(4, DiskModel::lustre_like()).with_fault_plan(&plan);
        fs.create(
            "t.nc",
            StripeLayout::round_robin(1024, 4, 0, 4),
            Box::new(SyntheticBackend::new(256, ElemKind::F64, test_value)),
        );
        Arc::new(fs)
    };
    let world = World::new(4, test_model(2, 2).with_fault(plan));
    let fs = &fs;
    let var = &var;
    let results = world.run(move |comm| {
        let file = fs.open("t.nc").expect("exists");
        let io = ObjectIo::new(vec![comm.rank() as u64, 0], vec![1, 64]);
        object_get_vara(comm, fs, &file, var, &io, &SumKernel)
    });
    let expect: f64 = (0..256).map(test_value).sum();
    assert_close(
        results.into_iter().find_map(|o| o.global).expect("root")[0],
        expect,
        "sum under combined faults",
    );
}

#[test]
#[should_panic]
fn permanent_failure_aborts() {
    // fail_every = 1: every attempt fails; retries exhaust.
    let fs = Pfs::new(1, DiskModel::lustre_like()).with_retries(RetryPlan::every(
        1,
        SimTime::from_secs(0.01),
        3,
    ));
    fs.create(
        "t.nc",
        StripeLayout::round_robin(1024, 1, 0, 1),
        Box::new(SyntheticBackend::new(16, ElemKind::F64, test_value)),
    );
    let file = fs.open("t.nc").expect("exists");
    let _ = fs.read_at(&file, 0, 64, SimTime::ZERO);
}
