//! Engine-level oracle equivalence for the compiled planner.
//!
//! The in-crate property tests (`cc-mpiio::schedule`) prove every
//! `PlanSchedule` *answer* is bit-identical to the query-based
//! `CollectivePlan` oracle. These tests close the loop at the engine
//! level: on random request sets — empty ranks, sparse holes, aligned
//! domains — every engine that consumes a schedule (two-phase read,
//! collective write, the cc engine, the traditional baseline, and fused
//! kernels) must produce identical *results* whether the schedule is
//! compiled fresh each step or reused through the plan cache's
//! hit/translation fast paths, and those results must match a
//! planner-free oracle.

use std::sync::Arc;

use cc_array::{Hyperslab, Shape};
use cc_core::{
    object_get_vara, object_get_vara_cached, traditional_get_vara, FusedKernel, MinLocKernel,
    ObjectIo, SumKernel,
};
use cc_integration::{build_var_fs, oracle_min_loc, oracle_sum, test_model, test_value};
use cc_model::{CollectiveMode, DiskModel, FaultPlan, SimTime};
use cc_mpi::World;
use cc_mpiio::{
    collective_read, collective_read_cached, collective_write, collective_write_cached,
    DomainPartition, Extent, Hints, OffsetList, PipelineDepth, PlanCache,
};
use cc_pfs::backend::ElemKind;
use cc_pfs::{MemBackend, Pfs, StripeLayout, SyntheticBackend};
use proptest::prelude::*;

/// A random multi-rank, multi-step request workload: per rank a sparse
/// `(gap, len)` walk (possibly empty), swept over `steps` timesteps each
/// shifted by a constant, alignment-safe delta.
#[derive(Debug, Clone)]
struct ReqSweep {
    per_rank: Vec<Vec<(u64, u64)>>,
    cb: u64,
    align: Option<u64>,
    nodes: usize,
    steps: usize,
}

impl ReqSweep {
    fn nprocs(&self) -> usize {
        self.per_rank.len()
    }

    fn hints(&self) -> Hints {
        Hints {
            cb_buffer_size: self.cb,
            align_domains_to: self.align,
            ..Hints::default()
        }
    }

    /// Shift between consecutive steps — a multiple of the domain
    /// alignment, so the cache's translation fast path stays valid.
    fn step_delta(&self) -> u64 {
        257 * self.align.unwrap_or(1)
    }

    /// Rank `r`'s request at `step`.
    fn request(&self, r: usize, step: usize) -> OffsetList {
        let mut pos = step as u64 * self.step_delta();
        let mut extents = Vec::new();
        for &(gap, len) in &self.per_rank[r] {
            pos += gap + 1;
            extents.push(Extent { offset: pos, len });
            pos += len;
        }
        OffsetList::new(extents)
    }

    /// Rank `r`'s request at `step`, offset into a per-rank region so
    /// no two ranks ever write the same byte in one collective (the
    /// write engine rejects overlapping writes).
    fn request_disjoint(&self, r: usize, step: usize) -> OffsetList {
        OffsetList::new(
            self.request(r, step)
                .extents()
                .iter()
                .map(|e| Extent {
                    offset: e.offset + r as u64 * Self::REGION,
                    len: e.len,
                })
                .collect(),
        )
    }

    /// Per-rank region span for [`Self::request_disjoint`]: larger than
    /// any walk can reach within one step.
    const REGION: u64 = 16_384;

    /// Bytes a file must hold to cover every rank's every step.
    fn file_size(&self) -> u64 {
        let mut size = 64u64;
        for r in 0..self.nprocs() {
            for step in 0..self.steps {
                for e in self.request(r, step).extents() {
                    size = size.max(e.end());
                }
            }
        }
        size + 8
    }
}

fn arb_sweep() -> impl Strategy<Value = ReqSweep> {
    (
        proptest::collection::vec(
            proptest::collection::vec((0u64..200, 0u64..40), 0..8),
            1..5,
        ),
        4u64..10,
        proptest::option::of(1u64..96),
        1usize..3,
        2usize..4,
    )
        .prop_map(|(per_rank, cb_log, align, nodes, steps)| ReqSweep {
            per_rank,
            cb: 1 << cb_log,
            align,
            nodes,
            steps,
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Two-phase read: fresh per-step compiles and a cache shared across
    /// the sweep return the identical bytes, and the bytes are exactly
    /// what the backend holds at the requested extents.
    #[test]
    fn prop_read_cached_sweep_equals_fresh_and_backend(sweep in arb_sweep()) {
        let nprocs = sweep.nprocs();
        let size = sweep.file_size();
        let elems = size.div_ceil(8);
        let fs = Pfs::new(4, DiskModel::lustre_like());
        fs.create(
            "t.nc",
            StripeLayout::round_robin(1 << 9, 4, 0, 4),
            Box::new(SyntheticBackend::new(elems, ElemKind::F64, test_value)),
        );
        let fs = Arc::new(fs);
        let world = World::new(nprocs, test_model(sweep.nodes, nprocs.div_ceil(sweep.nodes)));
        let fs = &fs;
        let sweep_ref = &sweep;
        let ok = world.run(move |comm| {
            let file = fs.open("t.nc").expect("exists");
            let hints = sweep_ref.hints();
            let oracle = SyntheticBackend::new(elems, ElemKind::F64, test_value);
            let mut cache = PlanCache::new();
            let mut all_match = true;
            for step in 0..sweep_ref.steps {
                let req = sweep_ref.request(comm.rank(), step);
                let (fresh, _) = collective_read(comm, fs, &file, &req, &hints);
                let (cached, _) =
                    collective_read_cached(comm, fs, &file, &req, &hints, Some(&mut cache));
                all_match &= fresh == cached;
                // Planner-free oracle: the backend's bytes, extent by extent.
                let mut at = 0usize;
                for e in req.extents() {
                    let mut expect = vec![0u8; e.len as usize];
                    oracle.fill_range(e.offset, &mut expect);
                    all_match &= fresh[at..at + e.len as usize] == expect[..];
                    at += e.len as usize;
                }
                all_match &= at == fresh.len();
            }
            all_match &= cache.stats().misses <= 1;
            all_match
        });
        prop_assert!(ok.into_iter().all(|b| b), "read sweep diverged");
    }

    /// Collective write: a sweep written through the plan cache lands the
    /// byte-identical file as one written with fresh per-step schedules,
    /// and both match the expected overwrite of the zeroed file.
    #[test]
    fn prop_write_cached_sweep_equals_fresh_and_expected(sweep in arb_sweep()) {
        let nprocs = sweep.nprocs();
        let size = sweep.file_size() + nprocs as u64 * ReqSweep::REGION;
        let value_at = |o: u64| (o.wrapping_mul(131) ^ (o >> 5)) as u8;
        let fs = Pfs::new(4, DiskModel::lustre_like());
        for name in ["fresh.nc", "cached.nc"] {
            fs.create(
                name,
                StripeLayout::round_robin(1 << 9, 4, 0, 4),
                Box::new(MemBackend::zeroed(size as usize)),
            );
        }
        let fs = Arc::new(fs);
        let world = World::new(nprocs, test_model(sweep.nodes, nprocs.div_ceil(sweep.nodes)));
        {
            let fs = &fs;
            let sweep_ref = &sweep;
            world.run(move |comm| {
                let fresh_file = fs.open("fresh.nc").expect("exists");
                let cached_file = fs.open("cached.nc").expect("exists");
                let hints = sweep_ref.hints();
                let mut cache = PlanCache::new();
                for step in 0..sweep_ref.steps {
                    let req = sweep_ref.request_disjoint(comm.rank(), step);
                    let data: Vec<u8> = req
                        .extents()
                        .iter()
                        .flat_map(|e| (e.offset..e.end()).map(value_at))
                        .collect();
                    collective_write(comm, fs, &fresh_file, &req, &data, &hints);
                    collective_write_cached(
                        comm,
                        fs,
                        &cached_file,
                        &req,
                        &data,
                        &hints,
                        Some(&mut cache),
                    );
                }
            });
        }
        let fresh_file = fs.open("fresh.nc").expect("exists");
        let cached_file = fs.open("cached.nc").expect("exists");
        let (fresh_bytes, _) = fs.read_at(&fresh_file, 0, size, SimTime::ZERO);
        let (cached_bytes, _) = fs.read_at(&cached_file, 0, size, SimTime::ZERO);
        prop_assert_eq!(&fresh_bytes, &cached_bytes, "cached write sweep diverged");
        // Planner-free oracle: zeros, overwritten wherever any rank wrote.
        let mut expect = vec![0u8; size as usize];
        for r in 0..nprocs {
            for step in 0..sweep.steps {
                for e in sweep.request_disjoint(r, step).extents() {
                    for o in e.offset..e.end() {
                        expect[o as usize] = value_at(o);
                    }
                }
            }
        }
        prop_assert_eq!(&fresh_bytes, &expect, "written file diverged from oracle");
    }

    /// Hierarchical comm variant: the same random sweep, read *and*
    /// written under [`CollectiveMode::Flat`] and
    /// [`CollectiveMode::Hierarchical`], must move bit-identical bytes.
    /// The topology is forced multi-node so leader relay/coalesce paths
    /// actually engage (single-node worlds fall back to flat).
    #[test]
    fn prop_hierarchical_shuffle_equals_flat(sweep in arb_sweep()) {
        let nprocs = sweep.nprocs();
        let nodes = sweep.nodes + 1; // >= 2 nodes
        let size = sweep.file_size() + nprocs as u64 * ReqSweep::REGION;
        let value_at = |o: u64| (o.wrapping_mul(193) ^ (o >> 3)) as u8;
        let mut reads: Vec<Vec<Vec<u8>>> = Vec::new();
        let mut files: Vec<Vec<u8>> = Vec::new();
        for mode in [CollectiveMode::Flat, CollectiveMode::Hierarchical] {
            let fs = Pfs::new(4, DiskModel::lustre_like());
            fs.create(
                "t.nc",
                StripeLayout::round_robin(1 << 9, 4, 0, 4),
                Box::new(MemBackend::from_bytes(
                    (0..size).map(value_at).collect(),
                )),
            );
            fs.create(
                "out.nc",
                StripeLayout::round_robin(1 << 9, 4, 0, 4),
                Box::new(MemBackend::zeroed(size as usize)),
            );
            let fs = Arc::new(fs);
            let model = test_model(nodes, nprocs.div_ceil(nodes)).with_collectives(mode);
            let world = World::new(nprocs, model);
            let per_rank = {
                let fs = &fs;
                let sweep_ref = &sweep;
                world.run(move |comm| {
                    let file = fs.open("t.nc").expect("exists");
                    let out = fs.open("out.nc").expect("exists");
                    let hints = sweep_ref.hints();
                    let mut got = Vec::new();
                    for step in 0..sweep_ref.steps {
                        let req = sweep_ref.request(comm.rank(), step);
                        let (bytes, _) = collective_read(comm, fs, &file, &req, &hints);
                        let wreq = sweep_ref.request_disjoint(comm.rank(), step);
                        let data: Vec<u8> = wreq
                            .extents()
                            .iter()
                            .flat_map(|e| (e.offset..e.end()).map(value_at))
                            .collect();
                        collective_write(comm, fs, &out, &wreq, &data, &hints);
                        got.push(bytes);
                    }
                    got
                })
            };
            reads.push(per_rank.into_iter().flatten().collect());
            let out = fs.open("out.nc").expect("exists");
            let (file_bytes, _) = fs.read_at(&out, 0, size, SimTime::ZERO);
            files.push(file_bytes);
        }
        prop_assert_eq!(&reads[0], &reads[1], "hierarchical read bytes diverged from flat");
        prop_assert_eq!(&files[0], &files[1], "hierarchical written file diverged from flat");
    }

    /// Domain-partition strategies only redistribute *which aggregator*
    /// serves which bytes: on a random sweep over a randomly-striped file,
    /// Even, StripeAligned, and GroupCyclic must return bit-identical read
    /// buffers and land bit-identical written files — through the plan
    /// cache's hit/translation paths included.
    #[test]
    fn prop_partition_strategies_agree_bitwise(
        sweep in arb_sweep(),
        stripe_log in 5u64..11,
        stripe_count in 1usize..5,
    ) {
        let nprocs = sweep.nprocs();
        let size = sweep.file_size() + nprocs as u64 * ReqSweep::REGION;
        let value_at = |o: u64| (o.wrapping_mul(167) ^ (o >> 4)) as u8;
        let mut reads: Vec<Vec<Vec<u8>>> = Vec::new();
        let mut files: Vec<Vec<u8>> = Vec::new();
        for partition in [
            DomainPartition::Even,
            DomainPartition::StripeAligned,
            DomainPartition::GroupCyclic,
        ] {
            let fs = Pfs::new(4, DiskModel::lustre_like());
            for (name, backend) in [
                (
                    "t.nc",
                    MemBackend::from_bytes((0..size).map(value_at).collect()),
                ),
                ("out.nc", MemBackend::zeroed(size as usize)),
            ] {
                fs.create(
                    name,
                    StripeLayout::round_robin(1 << stripe_log, stripe_count, 0, 4),
                    Box::new(backend),
                );
            }
            let fs = Arc::new(fs);
            let world =
                World::new(nprocs, test_model(sweep.nodes, nprocs.div_ceil(sweep.nodes)));
            let per_rank = {
                let fs = &fs;
                let sweep_ref = &sweep;
                world.run(move |comm| {
                    let file = fs.open("t.nc").expect("exists");
                    let out = fs.open("out.nc").expect("exists");
                    let hints = Hints {
                        domain_partition: partition,
                        ..sweep_ref.hints()
                    };
                    let mut cache = PlanCache::new();
                    let mut got = Vec::new();
                    for step in 0..sweep_ref.steps {
                        let req = sweep_ref.request(comm.rank(), step);
                        let (bytes, _) = collective_read_cached(
                            comm, fs, &file, &req, &hints, Some(&mut cache),
                        );
                        let wreq = sweep_ref.request_disjoint(comm.rank(), step);
                        let data: Vec<u8> = wreq
                            .extents()
                            .iter()
                            .flat_map(|e| (e.offset..e.end()).map(value_at))
                            .collect();
                        collective_write_cached(
                            comm, fs, &out, &wreq, &data, &hints, Some(&mut cache),
                        );
                        got.push(bytes);
                    }
                    got
                })
            };
            reads.push(per_rank.into_iter().flatten().collect());
            let out = fs.open("out.nc").expect("exists");
            let (file_bytes, _) = fs.read_at(&out, 0, size, SimTime::ZERO);
            files.push(file_bytes);
        }
        prop_assert_eq!(&reads[0], &reads[1], "StripeAligned read bytes diverged from Even");
        prop_assert_eq!(&reads[0], &reads[2], "GroupCyclic read bytes diverged from Even");
        prop_assert_eq!(&files[0], &files[1], "StripeAligned written file diverged from Even");
        prop_assert_eq!(&files[0], &files[2], "GroupCyclic written file diverged from Even");
    }
}

/// A shape-based config for the kernel engines: row-blocked selections
/// with room for a shifted second step.
#[derive(Debug, Clone)]
struct KernelConfig {
    shape: Shape,
    nprocs: usize,
    cb: u64,
}

fn arb_kernel_config() -> impl Strategy<Value = KernelConfig> {
    (
        1usize..5,
        proptest::collection::vec(1u64..6, 1..3),
        5u64..12,
    )
        .prop_map(|(nprocs, extra, cb_log)| {
            // dims[0] holds two disjoint nprocs-sized row bands, so step 1
            // is step 0 shifted by a constant byte delta.
            let mut dims = vec![nprocs as u64 * 4];
            dims.extend(extra.iter().map(|&d| d * 4));
            KernelConfig {
                shape: Shape::new(dims),
                nprocs,
                cb: 1 << cb_log,
            }
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// The cc engine, the traditional baseline, and a fused kernel must
    /// all agree with the planner-free oracle — and the cc engine must
    /// return identical partials whether each step compiles fresh or the
    /// steps share one plan cache (step 1 is a translation of step 0).
    #[test]
    fn prop_engines_equal_oracle_fresh_and_cached(cfg in arb_kernel_config()) {
        let (fs, var) = build_var_fs(&cfg.shape, 512, 4, 8);
        let world = World::new(cfg.nprocs, test_model(1, cfg.nprocs));
        let fs = &fs;
        let var = &var;
        let cfg_ref = &cfg;
        let results = world.run(move |comm| {
            let file = fs.open("t.nc").expect("exists");
            let band = cfg_ref.shape.dims()[0] / 2;
            let per = band / cfg_ref.nprocs as u64;
            let my_rank = comm.rank() as u64;
            let io_for = move |step: u64| {
                let mut start = vec![0; cfg_ref.shape.rank()];
                let mut count = cfg_ref.shape.dims().to_vec();
                start[0] = step * band + my_rank * per;
                count[0] = per;
                ObjectIo::new(start, count).hints(Hints {
                    cb_buffer_size: cfg_ref.cb,
                    ..Hints::default()
                })
            };
            let fused = FusedKernel::new(vec![&SumKernel, &MinLocKernel]);
            let mut cache = PlanCache::new();
            let mut sums = Vec::new();
            let mut fused_ok = true;
            for step in 0..2u64 {
                let io = io_for(step);
                let fresh = object_get_vara(comm, fs, &file, var, &io, &SumKernel);
                let cached = object_get_vara_cached(
                    comm, fs, &file, var, &io, &SumKernel, Some(&mut cache),
                );
                assert_eq!(
                    fresh.global_partial, cached.global_partial,
                    "cached cc partial diverged from fresh"
                );
                // Baseline over the same selection, reduced at root 0.
                let slab = Hyperslab::new(io.start.clone(), io.count.clone());
                let (base_global, _, _) = traditional_get_vara(
                    comm, fs, &file, var, &slab, &io.hints, &SumKernel, 0,
                );
                // Fused kernel through the cached path: its split
                // components must equal the dedicated kernels' answers.
                let fused_out = object_get_vara_cached(
                    comm, fs, &file, var, &io, &fused, Some(&mut cache),
                );
                let minloc = object_get_vara(comm, fs, &file, var, &io, &MinLocKernel);
                if let (Some(fp), Some(sp), Some(mp)) = (
                    &fused_out.global_partial,
                    &cached.global_partial,
                    &minloc.global_partial,
                ) {
                    let parts = fused.split(fp);
                    fused_ok &= parts == vec![sp.clone(), mp.clone()];
                }
                sums.push((
                    cached.global.map(|g| g[0]),
                    base_global.map(|g| g[0]),
                    fused_out.global_partial.is_some(),
                ));
            }
            (sums, fused_ok, cache.stats())
        });
        // Root-side checks: each step's sum equals the oracle, from every
        // engine; the fused split matched on whichever rank held a global.
        let band = cfg.shape.dims()[0] / 2;
        for step in 0..2u64 {
            let mut count = cfg.shape.dims().to_vec();
            let mut start = vec![0; cfg.shape.rank()];
            start[0] = step * band;
            count[0] = band;
            let slab = Hyperslab::new(start, count);
            let expect = oracle_sum(&cfg.shape, &slab);
            let (cc, base, fused_root) = results
                .iter()
                .find_map(|(sums, _, _)| {
                    let s = &sums[step as usize];
                    s.0.map(|cc| (cc, s.1, s.2))
                })
                .expect("some rank holds the global");
            prop_assert!((cc - expect).abs() <= 1e-9 * expect.abs().max(1.0),
                "cc {cc} != oracle {expect}");
            let base = base.expect("baseline reduces to the same root");
            prop_assert!((base - expect).abs() <= 1e-9 * expect.abs().max(1.0),
                "baseline {base} != oracle {expect}");
            prop_assert!(fused_root, "fused global missing");
        }
        prop_assert!(results.iter().all(|(_, ok, _)| *ok), "fused split diverged");
        // The sweep's second step must have reused the compiled schedule:
        // at most one compile for the sum kernel's shape (the fused pass
        // shares it too — same selection, same hints).
        let stats = results[0].2;
        prop_assert!(stats.misses <= 1, "cache recompiled: {stats:?}");
        // Sanity: oracle_min_loc agrees with the dedicated kernel's own
        // tests elsewhere; here it pins the fused component semantics.
        let _ = oracle_min_loc(&cfg.shape, &Hyperslab::whole(&cfg.shape));
    }
}

/// A step's `(sum_global, fused_global)` pair — present on the rank that
/// holds the reduction root.
type KernelGlobals = (Option<Vec<f64>>, Option<Vec<f64>>);

/// The staging-depth variants every engine must agree across: blocking
/// mode, and nonblocking mode at ring depths 1 (sequential), 2 (double
/// buffer), 3, and unbounded (the historical engine behavior).
const DEPTHS: [(&str, bool, PipelineDepth); 5] = [
    ("blocking", false, PipelineDepth::Unbounded),
    ("sequential", true, PipelineDepth::Sequential),
    ("depth-2", true, PipelineDepth::Depth(2)),
    ("depth-3", true, PipelineDepth::Depth(3)),
    ("unbounded", true, PipelineDepth::Unbounded),
];

fn with_depth(base: &Hints, nonblocking: bool, depth: PipelineDepth) -> Hints {
    Hints {
        nonblocking,
        pipeline_depth: depth,
        ..base.clone()
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Software pipelining reorders *when* staging buffers are filled,
    /// never *what* they carry: on a random sweep, every staging depth —
    /// under flat and hierarchical shuffles alike — must return the
    /// bit-identical read buffers and land the bit-identical written file.
    #[test]
    fn prop_pipeline_depths_move_identical_bytes(sweep in arb_sweep()) {
        let nprocs = sweep.nprocs();
        let nodes = sweep.nodes + 1; // >= 2 nodes so hierarchy engages
        let size = sweep.file_size() + nprocs as u64 * ReqSweep::REGION;
        let value_at = |o: u64| (o.wrapping_mul(211) ^ (o >> 6)) as u8;
        let mut baseline: Option<(Vec<Vec<u8>>, Vec<u8>)> = None;
        for mode in [CollectiveMode::Flat, CollectiveMode::Hierarchical] {
            for (label, nonblocking, depth) in DEPTHS {
                let fs = Pfs::new(4, DiskModel::lustre_like());
                fs.create(
                    "t.nc",
                    StripeLayout::round_robin(1 << 9, 4, 0, 4),
                    Box::new(MemBackend::from_bytes((0..size).map(value_at).collect())),
                );
                fs.create(
                    "out.nc",
                    StripeLayout::round_robin(1 << 9, 4, 0, 4),
                    Box::new(MemBackend::zeroed(size as usize)),
                );
                let fs = Arc::new(fs);
                let model = test_model(nodes, nprocs.div_ceil(nodes)).with_collectives(mode);
                let world = World::new(nprocs, model);
                let per_rank = {
                    let fs = &fs;
                    let sweep_ref = &sweep;
                    world.run(move |comm| {
                        let file = fs.open("t.nc").expect("exists");
                        let out = fs.open("out.nc").expect("exists");
                        let hints = with_depth(&sweep_ref.hints(), nonblocking, depth);
                        let mut got = Vec::new();
                        for step in 0..sweep_ref.steps {
                            let req = sweep_ref.request(comm.rank(), step);
                            let (bytes, _) = collective_read(comm, fs, &file, &req, &hints);
                            let wreq = sweep_ref.request_disjoint(comm.rank(), step);
                            let data: Vec<u8> = wreq
                                .extents()
                                .iter()
                                .flat_map(|e| (e.offset..e.end()).map(value_at))
                                .collect();
                            collective_write(comm, fs, &out, &wreq, &data, &hints);
                            got.push(bytes);
                        }
                        got
                    })
                };
                let reads: Vec<Vec<u8>> = per_rank.into_iter().flatten().collect();
                let out = fs.open("out.nc").expect("exists");
                let (file_bytes, _) = fs.read_at(&out, 0, size, SimTime::ZERO);
                match &baseline {
                    None => baseline = Some((reads, file_bytes)),
                    Some((base_reads, base_file)) => {
                        prop_assert_eq!(
                            base_reads, &reads,
                            "{} {:?} read bytes diverged from blocking flat", label, mode
                        );
                        prop_assert_eq!(
                            base_file, &file_bytes,
                            "{} {:?} written file diverged from blocking flat", label, mode
                        );
                    }
                }
            }
        }
    }

    /// The cc engine drains its staging ring through the map kernel: at
    /// every depth the kernel must see the iterations in the same order
    /// with the same bytes, so globals are exactly equal — not merely
    /// close — and still match the planner-free oracle.
    #[test]
    fn prop_cc_engine_depths_agree_exactly(cfg in arb_kernel_config()) {
        let (fs, var) = build_var_fs(&cfg.shape, 512, 4, 8);
        let band = cfg.shape.dims()[0] / 2;
        let per = band / cfg.nprocs as u64;
        let mut baseline: Option<Vec<KernelGlobals>> = None;
        for (label, nonblocking, depth) in DEPTHS {
            let world = World::new(cfg.nprocs, test_model(1, cfg.nprocs));
            let fs = &fs;
            let var = &var;
            let cfg_ref = &cfg;
            let results = world.run(move |comm| {
                let file = fs.open("t.nc").expect("exists");
                let fused = FusedKernel::new(vec![&SumKernel, &MinLocKernel]);
                let mut per_step = Vec::new();
                for step in 0..2u64 {
                    let mut start = vec![0; cfg_ref.shape.rank()];
                    let mut count = cfg_ref.shape.dims().to_vec();
                    start[0] = step * band + comm.rank() as u64 * per;
                    count[0] = per;
                    let io = ObjectIo::new(start, count).hints(with_depth(
                        &Hints {
                            cb_buffer_size: cfg_ref.cb,
                            ..Hints::default()
                        },
                        nonblocking,
                        depth,
                    ));
                    let sum = object_get_vara(comm, fs, &file, var, &io, &SumKernel);
                    let both = object_get_vara(comm, fs, &file, var, &io, &fused);
                    per_step.push((sum.global, both.global));
                }
                per_step
            });
            let flat: Vec<_> = results.into_iter().flatten().collect();
            match &baseline {
                None => baseline = Some(flat),
                Some(base) => prop_assert_eq!(
                    base, &flat,
                    "{} kernel globals diverged from blocking", label
                ),
            }
        }
        // The depth sweep agreed with itself; pin it to the oracle too.
        let globals = baseline.expect("at least one depth ran");
        for step in 0..2u64 {
            let mut start = vec![0; cfg.shape.rank()];
            let mut count = cfg.shape.dims().to_vec();
            start[0] = step * band;
            count[0] = band;
            let slab = Hyperslab::new(start, count);
            let expect = oracle_sum(&cfg.shape, &slab);
            let got = globals
                .iter()
                .skip(step as usize)
                .step_by(2)
                .find_map(|(sum, _)| sum.as_ref())
                .expect("some rank holds the global")[0];
            prop_assert!(
                (got - expect).abs() <= 1e-9 * expect.abs().max(1.0),
                "step {} sum {} != oracle {}", step, got, expect
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Lossless wire compression is a pure transport change: on a random
    /// sweep, `Compression::Off` and `Compression::Lossless` must return
    /// bit-identical read buffers and land bit-identical written files,
    /// under flat and hierarchical shuffles and across staging depths.
    #[test]
    fn prop_lossless_compression_moves_identical_bytes(sweep in arb_sweep()) {
        use cc_mpiio::Compression;
        let nprocs = sweep.nprocs();
        let nodes = sweep.nodes + 1; // >= 2 nodes so inter-node lanes engage
        let size = sweep.file_size() + nprocs as u64 * ReqSweep::REGION;
        let value_at = |o: u64| (o.wrapping_mul(227) ^ (o >> 5)) as u8;
        let mut baseline: Option<(Vec<Vec<u8>>, Vec<u8>)> = None;
        for mode in [CollectiveMode::Flat, CollectiveMode::Hierarchical] {
            for compression in [Compression::Off, Compression::Lossless] {
                for (_, nonblocking, depth) in
                    [DEPTHS[0], DEPTHS[2], DEPTHS[4]]
                {
                    let fs = Pfs::new(4, DiskModel::lustre_like());
                    fs.create(
                        "t.nc",
                        StripeLayout::round_robin(1 << 9, 4, 0, 4),
                        Box::new(MemBackend::from_bytes((0..size).map(value_at).collect())),
                    );
                    fs.create(
                        "out.nc",
                        StripeLayout::round_robin(1 << 9, 4, 0, 4),
                        Box::new(MemBackend::zeroed(size as usize)),
                    );
                    let fs = Arc::new(fs);
                    let model =
                        test_model(nodes, nprocs.div_ceil(nodes)).with_collectives(mode);
                    let world = World::new(nprocs, model);
                    let per_rank = {
                        let fs = &fs;
                        let sweep_ref = &sweep;
                        world.run(move |comm| {
                            let file = fs.open("t.nc").expect("exists");
                            let out = fs.open("out.nc").expect("exists");
                            let hints = Hints {
                                compression,
                                ..with_depth(&sweep_ref.hints(), nonblocking, depth)
                            };
                            let mut got = Vec::new();
                            for step in 0..sweep_ref.steps {
                                let req = sweep_ref.request(comm.rank(), step);
                                let (bytes, _) =
                                    collective_read(comm, fs, &file, &req, &hints);
                                let wreq = sweep_ref.request_disjoint(comm.rank(), step);
                                let data: Vec<u8> = wreq
                                    .extents()
                                    .iter()
                                    .flat_map(|e| (e.offset..e.end()).map(value_at))
                                    .collect();
                                collective_write(comm, fs, &out, &wreq, &data, &hints);
                                got.push(bytes);
                            }
                            got
                        })
                    };
                    let reads: Vec<Vec<u8>> = per_rank.into_iter().flatten().collect();
                    let out = fs.open("out.nc").expect("exists");
                    let (file_bytes, _) = fs.read_at(&out, 0, size, SimTime::ZERO);
                    match &baseline {
                        None => baseline = Some((reads, file_bytes)),
                        Some((base_reads, base_file)) => {
                            prop_assert_eq!(
                                base_reads, &reads,
                                "{:?} {:?} read bytes diverged", compression, mode
                            );
                            prop_assert_eq!(
                                base_file, &file_bytes,
                                "{:?} {:?} written file diverged", compression, mode
                            );
                        }
                    }
                }
            }
        }
    }
}

/// Error-bounded hints must never flip a selection kernel's winner: the
/// engine clamps lossy compression to lossless for exact-tolerance
/// kernels (min/max and the located variants). The field is adversarial —
/// a near-flat ramp whose step (1e-7) is far below the requested bound
/// (1e-3), so an actually-lossy shuffle would collapse thousands of
/// near-ties onto shared reconstructions and report a wrong winner or a
/// wrong index. Both the collective-computing path and the blocking
/// (traditional, raw-field-shuffling) path are pinned, under flat and
/// hierarchical collectives.
#[test]
fn error_bounded_hints_never_flip_selection_winners() {
    use cc_core::{MaxLocKernel, MinKernel};
    use cc_mpiio::{Compression, ErrorBound};

    const N: u64 = 4096;
    let value = |i: u64| 500.0 - i as f64 * 1e-7;
    let nprocs = 4;
    let bytes: Vec<u8> = (0..N).flat_map(|i| value(i).to_le_bytes()).collect();
    for mode in [CollectiveMode::Flat, CollectiveMode::Hierarchical] {
        for blocking in [false, true] {
            let fs = Pfs::new(4, DiskModel::lustre_like());
            fs.create(
                "t.nc",
                StripeLayout::round_robin(1 << 9, 4, 0, 4),
                Box::new(MemBackend::from_bytes(bytes.clone())),
            );
            let fs = Arc::new(fs);
            let var = cc_array::Variable::new("v", Shape::new(vec![N]), cc_array::DType::F64, 0);
            let model = test_model(2, nprocs / 2).with_collectives(mode);
            let world = World::new(nprocs, model);
            let results = {
                let fs = &fs;
                let var = &var;
                world.run(move |comm| {
                    let file = fs.open("t.nc").expect("exists");
                    let per = N / nprocs as u64;
                    let start = vec![comm.rank() as u64 * per];
                    let count = vec![per];
                    let io = ObjectIo::new(start, count).blocking(blocking).hints(Hints {
                        cb_buffer_size: 2048,
                        compression: Compression::ErrorBounded(ErrorBound::absolute(1e-3)),
                        ..Hints::default()
                    });
                    let minloc = object_get_vara(comm, fs, &file, var, &io, &MinLocKernel);
                    let maxloc = object_get_vara(comm, fs, &file, var, &io, &MaxLocKernel);
                    let min = object_get_vara(comm, fs, &file, var, &io, &MinKernel);
                    (minloc.global, maxloc.global, min.global)
                })
            };
            let (minloc, maxloc, min) = results
                .iter()
                .find_map(|(a, b, c)| a.clone().map(|a| (a, b.clone().unwrap(), c.clone().unwrap())))
                .expect("root holds the globals");
            // The ramp decreases: exact min is the last element, exact max
            // the first — value *and* index must be exact to the bit.
            assert_eq!(minloc[0].to_bits(), value(N - 1).to_bits(), "minloc value ({mode:?}, blocking={blocking})");
            assert_eq!(minloc[1], (N - 1) as f64, "minloc index ({mode:?}, blocking={blocking})");
            assert_eq!(maxloc[0].to_bits(), value(0).to_bits(), "maxloc value ({mode:?}, blocking={blocking})");
            assert_eq!(maxloc[1], 0.0, "maxloc index ({mode:?}, blocking={blocking})");
            assert_eq!(min[0].to_bits(), value(N - 1).to_bits(), "min value ({mode:?}, blocking={blocking})");
        }
    }
}

/// A deterministic single-aggregator read workload: one node, so exactly
/// one rank books OST intervals and the virtual clock is reproducible
/// across runs (multi-aggregator timing depends on wall-clock booking
/// races, which backfill keeps *fair* but not *replayable*).
fn single_aggregator_sweep(
    nonblocking: bool,
    depth: PipelineDepth,
    plan: Option<FaultPlan>,
) -> Vec<(Vec<u8>, SimTime, SimTime)> {
    const NPROCS: usize = 4;
    const PER_RANK: u64 = 8 << 10;
    let size = NPROCS as u64 * PER_RANK;
    let value_at = |o: u64| (o.wrapping_mul(151) ^ (o >> 7)) as u8;
    let mut fs = Pfs::new(4, DiskModel::lustre_like());
    if let Some(p) = &plan {
        fs = fs.with_fault_plan(p);
    }
    fs.create(
        "t.nc",
        StripeLayout::round_robin(1 << 9, 4, 0, 4),
        Box::new(MemBackend::from_bytes((0..size).map(value_at).collect())),
    );
    let fs = Arc::new(fs);
    let mut model = test_model(1, NPROCS);
    if let Some(p) = plan {
        model = model.with_fault(p);
    }
    let world = World::new(NPROCS, model);
    let fs = &fs;
    world.run(move |comm| {
        let file = fs.open("t.nc").expect("exists");
        // 2 KiB collective buffer over a 32 KiB file: 16 pipelined
        // iterations, so staging depth has room to matter.
        let hints = with_depth(
            &Hints {
                cb_buffer_size: 2 << 10,
                ..Hints::default()
            },
            nonblocking,
            depth,
        );
        let req = OffsetList::contiguous(comm.rank() as u64 * PER_RANK, PER_RANK);
        let (bytes, report) = collective_read(comm, fs, &file, &req, &hints);
        (bytes, report.start, report.end)
    })
}

/// Depth-1 equivalence, encoded as a test: a one-buffer nonblocking ring
/// must reproduce blocking mode's virtual clock *exactly* — same start,
/// same end, on every rank — because its only staging buffer cannot be
/// refilled before the previous iteration's shuffle drains it.
#[test]
fn sequential_ring_matches_blocking_clock_exactly() {
    let blocking = single_aggregator_sweep(false, PipelineDepth::Unbounded, None);
    let sequential = single_aggregator_sweep(true, PipelineDepth::Sequential, None);
    assert_eq!(blocking, sequential, "depth-1 ring diverged from blocking");
}

/// Double buffering overlaps iteration i+1's read with iteration i's
/// shuffle, so on a read-dominated multi-iteration sweep the collective
/// must finish strictly earlier than sequential staging — and relaxing
/// the ring further (depth 3, unbounded) can only help, never hurt.
#[test]
fn deeper_staging_rings_monotonically_speed_up_reads() {
    let end_at = |depth: PipelineDepth| {
        let per_rank = single_aggregator_sweep(true, depth, None);
        let end = per_rank.iter().map(|(_, _, e)| *e).max().expect("ranks");
        let bytes: Vec<&Vec<u8>> = per_rank.iter().map(|(b, _, _)| b).collect();
        (end, bytes.iter().map(|b| b.len()).sum::<usize>())
    };
    let (seq, n1) = end_at(PipelineDepth::Sequential);
    let (two, n2) = end_at(PipelineDepth::Depth(2));
    let (three, n3) = end_at(PipelineDepth::Depth(3));
    let (unbounded, n4) = end_at(PipelineDepth::Unbounded);
    assert_eq!(n1, n2);
    assert_eq!(n1, n3);
    assert_eq!(n1, n4);
    assert!(
        two < seq,
        "double buffering must overlap read with shuffle: depth-2 {two} >= sequential {seq}"
    );
    assert!(three <= two, "depth-3 {three} regressed past depth-2 {two}");
    assert!(
        unbounded <= three,
        "unbounded {unbounded} regressed past depth-3 {three}"
    );
}

/// One randomly-drawn job for the multi-job service equivalence sweep.
#[derive(Debug, Clone)]
struct MixJob {
    nprocs: usize,
    steps: usize,
    extra_rows: u64,
    cols: u64,
    interactive: bool,
    weight: u8,
    arrival_us: u64,
    file: usize,
}

impl MixJob {
    fn rows_per_step(&self) -> u64 {
        self.nprocs as u64 + self.extra_rows
    }

    fn var_rows(&self) -> u64 {
        self.steps as u64 * self.rows_per_step()
    }

    fn spec(&self, id: usize) -> cc_service::JobSpec {
        use cc_core::SumKernel;
        let var = cc_array::Variable::new(
            "v",
            Shape::new(vec![self.var_rows(), self.cols]),
            cc_array::DType::F64,
            0,
        );
        let mut spec = cc_service::JobSpec::new(
            format!("job-{id}"),
            format!("mix-{}.nc", self.file),
            var,
            self.nprocs,
            Arc::new(SumKernel),
        )
        .weight(self.weight as f64)
        .arrival(SimTime::from_secs(self.arrival_us as f64 * 1e-6));
        if self.interactive {
            spec = spec.class(cc_service::QosClass::Interactive);
        }
        for s in 0..self.steps as u64 {
            spec = spec.step(
                vec![s * self.rows_per_step(), 0],
                vec![self.rows_per_step(), self.cols],
            );
        }
        spec
    }
}

/// A random service workload: K jobs over two shared files, one of three
/// scheduling policies, one of four fault plans.
#[derive(Debug, Clone)]
struct ServiceMix {
    jobs: Vec<MixJob>,
    policy: usize,
    fault: usize,
}

impl ServiceMix {
    fn policy(&self) -> cc_service::ServicePolicy {
        [
            cc_service::ServicePolicy::QosWfq,
            cc_service::ServicePolicy::Fifo,
            cc_service::ServicePolicy::RoundRobin,
        ][self.policy]
    }

    fn fault(&self) -> Option<FaultPlan> {
        match self.fault {
            0 => None,
            1 => Some(FaultPlan::new().slow_ost(0, 6.0)),
            2 => Some(FaultPlan::new().straggle_rank(0, 4.0)),
            _ => Some(FaultPlan::new().slow_ost(1, 3.0).straggle_rank(1, 2.0)),
        }
    }

    /// A fresh service over freshly-built files (data is identical across
    /// builds; only booking state would differ, and that never leaks into
    /// results).
    fn service(&self) -> cc_service::Service {
        let mut model = test_model(4, 2);
        let mut fs = Pfs::new(4, DiskModel::lustre_like());
        if let Some(p) = self.fault() {
            fs = fs.with_fault_plan(&p);
            model = model.with_fault(p);
        }
        for f in 0..2usize {
            let elems = self
                .jobs
                .iter()
                .filter(|j| j.file == f)
                .map(|j| j.var_rows() * j.cols)
                .max()
                .unwrap_or(64);
            fs.create(
                &format!("mix-{f}.nc"),
                StripeLayout::round_robin(1 << 9, 4, 0, 4),
                Box::new(SyntheticBackend::new(elems, ElemKind::F64, test_value)),
            );
        }
        let mut svc =
            cc_service::Service::new(model, Arc::new(fs)).with_policy(self.policy());
        // A modest shared backbone, so the lane booking path runs too.
        svc = svc.with_backbone(1e9);
        for (id, job) in self.jobs.iter().enumerate() {
            svc.submit(job.spec(id)).expect("mix jobs admit");
        }
        svc
    }
}

fn arb_service_mix() -> impl Strategy<Value = ServiceMix> {
    (
        proptest::collection::vec(
            (
                1usize..4,
                1usize..4,
                0u64..8,
                1u64..6,
                0u8..2,
                1u8..8,
                0u64..5000,
                0usize..2,
            ),
            2..5,
        ),
        0usize..3,
        0usize..4,
    )
        .prop_map(|(raw, policy, fault)| ServiceMix {
            jobs: raw
                .into_iter()
                .map(
                    |(nprocs, steps, extra_rows, cols8, interactive, weight, arrival_us, file)| {
                        MixJob {
                            nprocs,
                            steps,
                            extra_rows,
                            cols: cols8 * 8,
                            interactive: interactive == 1,
                            weight,
                            arrival_us,
                            file,
                        }
                    },
                )
                .collect(),
            policy,
            fault,
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// The multi-job service invariant: under ANY interleaving — random
    /// policies, QoS classes, weights, arrivals, and fault plans with slow
    /// OSTs and straggler ranks — every job's checksum is bit-identical to
    /// the serial execution of the same jobs, and the shared plan-cache
    /// counters partition exactly across jobs.
    #[test]
    fn prop_concurrent_jobs_bit_identical_to_serial_under_faults(mix in arb_service_mix()) {
        let conc = mix.service().run();
        let ser = mix.service().run_serial();
        prop_assert_eq!(conc.jobs.len(), ser.jobs.len());
        for (c, s) in conc.jobs.iter().zip(&ser.jobs) {
            prop_assert_eq!(c.id, s.id);
            prop_assert!(c.global.is_some(), "job {} lost its global", c.name);
            prop_assert_eq!(
                c.checksum(),
                s.checksum(),
                "job {} diverged from serial under policy {:?} fault {:?}",
                c.name.clone(),
                mix.policy(),
                mix.fault()
            );
            prop_assert!(c.finished >= c.started);
            prop_assert!(c.started >= c.submitted);
        }
        // Per-job cache counters partition the shared cache's totals.
        let folded = conc
            .jobs
            .iter()
            .fold(cc_mpiio::PlanCacheStats::default(), |acc, j| acc.merge(&j.plan_cache));
        prop_assert_eq!(folded, conc.cache);
        // Serial execution with private caches can never cross jobs.
        prop_assert_eq!(ser.cache.cross_job_hits, 0);
        prop_assert_eq!(ser.cache.cross_job_translations, 0);
    }
}

/// Shared-plan-cache regression under true concurrent access: two jobs
/// with translated-copy-compatible shapes (same per-rank extents, shifted
/// file offsets) run in separate worlds on separate OS threads against
/// one `SharedPlanCache`. Exactly one lookup anywhere may compile; every
/// other lookup must hit or translate that entry, and the non-compiling
/// job's lookups must all be counted as cross-job.
#[test]
fn shared_plan_cache_concurrent_jobs_share_and_count() {
    use cc_core::{iterative_get_vara_shared, SumKernel};
    use cc_mpiio::SharedPlanCache;

    const NPROCS: usize = 2;
    const STEPS: u64 = 2;
    const ROWS: u64 = 8;
    const COLS: u64 = 16;
    let fs = Pfs::new(4, DiskModel::lustre_like());
    for name in ["a.nc", "b.nc"] {
        fs.create(
            name,
            StripeLayout::round_robin(1 << 9, 4, 0, 4),
            Box::new(SyntheticBackend::new(
                2 * STEPS * ROWS * COLS,
                ElemKind::F64,
                test_value,
            )),
        );
    }
    let fs = Arc::new(fs);
    let cache = Arc::new(SharedPlanCache::new());
    let run_job = |file: &'static str, job: u64, row0: u64| {
        let fs = Arc::clone(&fs);
        let cache = Arc::clone(&cache);
        std::thread::spawn(move || {
            let var = cc_array::Variable::new(
                "v",
                Shape::new(vec![2 * STEPS * ROWS, COLS]),
                cc_array::DType::F64,
                0,
            );
            let world = World::new(NPROCS, test_model(1, NPROCS));
            let fs = &fs;
            let cache = &cache;
            let var = &var;
            let outs = world.run(move |comm| {
                let file = fs.open(file).expect("exists");
                let per = ROWS / NPROCS as u64;
                let ios: Vec<_> = (0..STEPS)
                    .map(|s| {
                        let start = vec![row0 + s * ROWS + comm.rank() as u64 * per, 0];
                        cc_core::ObjectIo::new(start, vec![per, COLS])
                    })
                    .collect();
                let steps: Vec<_> = ios.iter().map(|io| (var, io.clone())).collect();
                iterative_get_vara_shared(comm, fs, &file, &steps, &SumKernel, cache, job)
            });
            // Sum per-rank stats: each rank made STEPS lookups.
            outs.iter().fold(cc_mpiio::PlanCacheStats::default(), |acc, o| {
                acc.merge(&o.plan_cache)
            })
        })
    };
    // Job 7 starts at row 0, job 8 at a translated-copy-compatible shift
    // (same shape, ROWS further into the variable).
    let ja = run_job("a.nc", 7, 0);
    let jb = run_job("b.nc", 8, ROWS);
    let sa = ja.join().expect("job 7 completes");
    let sb = jb.join().expect("job 8 completes");
    let total = sa.merge(&sb);
    let shared = cache.stats();
    assert_eq!(total, shared, "per-job stats must partition the shared totals");
    // 2 jobs x 2 ranks x 2 steps = 8 lookups; the compile happens under
    // the cache lock, so exactly one lookup misses no matter how the
    // worlds' threads interleave — everyone else hits or translates.
    assert_eq!(shared.lookups(), 8);
    assert_eq!(shared.misses, 1, "racing jobs recompiled: {shared:?}");
    assert_eq!(shared.hits + shared.translations, 7);
    // The job that did not compile made 4 lookups, all against the other
    // job's entry.
    assert_eq!(
        shared.cross_job_hits + shared.cross_job_translations,
        4,
        "cross-job accounting wrong: {shared:?}"
    );
    let crosses = [
        sa.cross_job_hits + sa.cross_job_translations,
        sb.cross_job_hits + sb.cross_job_translations,
    ];
    assert!(
        crosses == [0, 4] || crosses == [4, 0],
        "one job compiles, the other rides: {crosses:?}"
    );
}

/// Fault sweep: under slow OSTs and straggler ranks, every staging depth
/// must still move the identical bytes — adversity may stretch the
/// virtual clock but can never reorder what lands in a buffer. The test
/// completing at all is the no-hang half of the contract: a pipelined
/// iteration stuck waiting on a fault would trip the recv watchdog and
/// abort the world instead of deadlocking the suite.
#[test]
fn fault_plans_stretch_clocks_but_never_bytes_at_any_depth() {
    let plans = [
        FaultPlan::new().slow_ost(0, 8.0),
        FaultPlan::new().straggle_rank(1, 5.0),
        FaultPlan::new().slow_ost(1, 4.0).straggle_rank(0, 3.0),
    ];
    let healthy = single_aggregator_sweep(false, PipelineDepth::Unbounded, None);
    let healthy_bytes: Vec<&Vec<u8>> = healthy.iter().map(|(b, _, _)| b).collect();
    for plan in plans {
        for (label, nonblocking, depth) in DEPTHS {
            let run = single_aggregator_sweep(nonblocking, depth, Some(plan.clone()));
            let bytes: Vec<&Vec<u8>> = run.iter().map(|(b, _, _)| b).collect();
            assert_eq!(
                healthy_bytes, bytes,
                "{label} under {plan:?} returned different bytes"
            );
        }
    }
}

/// A random many-task fusion mix: overlapping, disjoint, and duplicate
/// regions, mixed kernel classes (bounded-error sums and exact min-locs),
/// scattered arrivals, random batch widths and fuse windows, under the
/// same fault plans the service property sweeps.
#[derive(Debug, Clone)]
struct TaskMixCase {
    /// Per task: (row, col8, rows, cols8, kernel, arrival_us, duplicate).
    tasks: Vec<(u64, u64, u64, u64, u8, u64, u8)>,
    nprocs: usize,
    window_ms: usize,
    fault: usize,
}

const MIX_ROWS: u64 = 32;
const MIX_COLS: u64 = 32;

impl TaskMixCase {
    fn fault(&self) -> Option<FaultPlan> {
        match self.fault {
            0 => None,
            1 => Some(FaultPlan::new().slow_ost(0, 6.0)),
            2 => Some(FaultPlan::new().straggle_rank(0, 4.0)),
            _ => Some(FaultPlan::new().slow_ost(1, 3.0).straggle_rank(1, 2.0)),
        }
    }

    /// Every task's effective `(start, count, kernel)` — duplicates
    /// resolved to their predecessor, exactly as `batch()` submits them.
    fn resolved(&self) -> Vec<(Vec<u64>, Vec<u64>, u8)> {
        let mut out: Vec<(Vec<u64>, Vec<u64>, u8)> = Vec::with_capacity(self.tasks.len());
        for &(row, col8, rows, cols8, kernel, _, dup) in &self.tasks {
            match out.last() {
                Some(prev) if dup == 1 => out.push(prev.clone()),
                _ => out.push((vec![row, col8 * 8], vec![rows, cols8 * 8], kernel)),
            }
        }
        out
    }

    /// A fresh batch over a freshly-built file (data is identical across
    /// builds; only OST booking state differs, which never leaks into
    /// results).
    fn batch(&self) -> cc_service::TaskBatch {
        let mut model = test_model(2, 4);
        let mut fs = Pfs::new(4, DiskModel::lustre_like());
        if let Some(p) = self.fault() {
            fs = fs.with_fault_plan(&p);
            model = model.with_fault(p);
        }
        fs.create(
            "mix.nc",
            StripeLayout::round_robin(1 << 9, 4, 0, 4),
            Box::new(SyntheticBackend::new(
                MIX_ROWS * MIX_COLS,
                ElemKind::F64,
                test_value,
            )),
        );
        let var = cc_array::Variable::new(
            "v",
            Shape::new(vec![MIX_ROWS, MIX_COLS]),
            cc_array::DType::F64,
            0,
        );
        let mut batch = cc_service::TaskBatch::new(model, Arc::new(fs)).with_policy(
            cc_service::BatchPolicy {
                nprocs: self.nprocs,
                fuse_window: SimTime::from_secs(self.window_ms as f64 * 1e-3),
                ..cc_service::BatchPolicy::default()
            },
        );
        for (i, ((start, count, kernel), &(.., arrival_us, _))) in
            self.resolved().into_iter().zip(&self.tasks).enumerate()
        {
            let k: Arc<dyn cc_core::MapKernel> = if kernel == 0 {
                Arc::new(SumKernel)
            } else {
                Arc::new(MinLocKernel)
            };
            batch
                .submit(
                    cc_service::TaskSpec::new(
                        format!("t{i}"),
                        "mix.nc",
                        var.clone(),
                        start,
                        count,
                        k,
                    )
                    .arrival(SimTime::from_secs(arrival_us as f64 * 1e-6)),
                )
                .expect("mix tasks admit");
        }
        batch
    }
}

fn arb_task_mix() -> impl Strategy<Value = TaskMixCase> {
    (
        proptest::collection::vec(
            (
                0u64..28,
                0u64..3,
                1u64..5,
                1u64..3,
                0u8..2,
                0u64..5000,
                0u8..2,
            ),
            3..16,
        ),
        1usize..6,
        0usize..4,
        0usize..4,
    )
        .prop_map(|(tasks, nprocs, window_ms, fault)| TaskMixCase {
            tasks,
            nprocs,
            window_ms,
            fault,
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// The task-fusion invariant: on ANY many-task mix — overlapping,
    /// disjoint, and duplicate regions, mixed kernel classes, scattered
    /// arrivals, random batch widths and fuse windows, slow OSTs and
    /// straggler ranks — every task's fused result is bit-identical to
    /// its solo and independent executions, matches a brute-force oracle
    /// (dedup never drops or mangles a byte), and the fused-task counter
    /// accounts for every task exactly once.
    #[test]
    fn prop_fused_tasks_bit_identical_to_solo_under_faults(mix in arb_task_mix()) {
        let fused = mix.batch().run_fused();
        let indep = mix.batch().run_independent();
        let solo = mix.batch().run_solo();
        prop_assert_eq!(fused.tasks.len(), mix.tasks.len());
        for ((f, i), s) in fused.tasks.iter().zip(&indep.tasks).zip(&solo.tasks) {
            prop_assert_eq!(
                f.checksum(),
                s.checksum(),
                "task {} fused diverged from solo under fault {:?}",
                f.name.clone(),
                mix.fault()
            );
            prop_assert_eq!(
                i.checksum(),
                s.checksum(),
                "task {} independent diverged from solo",
                i.name.clone()
            );
            prop_assert!(f.bin.is_some(), "task {} was never binned", f.name.clone());
            prop_assert!(f.finished >= f.submitted);
        }
        // Oracle check: fusion must deliver every task its exact bytes.
        let shape = Shape::new(vec![MIX_ROWS, MIX_COLS]);
        for (t, (start, count, kernel)) in fused.tasks.iter().zip(mix.resolved()) {
            let slab = Hyperslab::new(start.clone(), count.clone());
            if kernel == 0 {
                let want = oracle_sum(&shape, &slab);
                let got = t.value[0];
                prop_assert!(
                    (got - want).abs() <= 1e-9 * want.abs().max(1.0),
                    "task {}: sum {} != oracle {}",
                    t.name.clone(),
                    got,
                    want
                );
            } else {
                let (min, loc) = oracle_min_loc(&shape, &slab);
                prop_assert_eq!(
                    t.value[0].to_bits(),
                    min.to_bits(),
                    "task {}: min {} != oracle {}",
                    t.name.clone(),
                    t.value[0],
                    min
                );
                prop_assert_eq!(t.value[1] as u64, loc, "task {} min-loc", t.name.clone());
            }
        }
        // Fused-task accounting: every task rode exactly one fused
        // schedule; the independent path never fuses.
        prop_assert_eq!(fused.plan_cache.fused_tasks, mix.tasks.len() as u64);
        prop_assert_eq!(indep.plan_cache.fused_tasks, 0);
        // Binning conserves tasks across bins.
        let binned: usize = fused.bins.iter().map(|b| b.tasks).sum();
        prop_assert_eq!(binned, mix.tasks.len());
    }
}
