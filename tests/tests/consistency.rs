//! Cross-path consistency: collective computing, the traditional baseline,
//! and independent mode must compute identical results over identical
//! selections, and their timing relationships must respect the paper's
//! claims.

use cc_array::Shape;
use cc_core::{object_get_vara, IoMode, ObjectIo, ReduceMode, SumKernel, SumSqKernel};
use cc_integration::{assert_close, build_var_fs, test_model, test_value};
use cc_model::SimTime;
use cc_mpi::World;
use cc_mpiio::Hints;
use cc_workloads::ClimateWorkload;

/// Runs one configuration through all three execution paths and returns
/// `(cc, baseline, independent)` global results plus the CC/baseline max
/// completion times.
fn tri_run(shape: &Shape, nprocs: usize, cb: u64) -> ([Vec<f64>; 3], SimTime, SimTime) {
    let rows = shape.dims()[0];
    let per = rows / nprocs as u64;
    let mut outs: Vec<Vec<f64>> = Vec::new();
    let mut t_cc = SimTime::ZERO;
    let mut t_mpi = SimTime::ZERO;
    for (mode, blocking) in [
        (IoMode::Collective, false),
        (IoMode::Collective, true),
        (IoMode::Independent, false),
    ] {
        let (fs, var) = build_var_fs(shape, 2048, 4, 8);
        let world = World::new(nprocs, test_model(2, nprocs / 2));
        let fs = &fs;
        let var = &var;
        let results = world.run(move |comm| {
            let file = fs.open("t.nc").expect("exists");
            let mut start = vec![0; shape.rank()];
            let mut count = shape.dims().to_vec();
            start[0] = comm.rank() as u64 * per;
            count[0] = per;
            let io = ObjectIo::new(start, count)
                .mode(mode)
                .blocking(blocking)
                .hints(Hints {
                    cb_buffer_size: cb,
                    ..Hints::default()
                })
                .reduce(ReduceMode::AllToOne { root: 0 });
            object_get_vara(comm, fs, &file, var, &io, &SumSqKernel)
        });
        let end = results.iter().map(|o| o.report.end).max().expect("nonempty");
        if blocking {
            t_mpi = end;
        } else if mode == IoMode::Collective {
            t_cc = end;
        }
        outs.push(results.into_iter().find_map(|o| o.global).expect("root"));
    }
    (
        [outs[0].clone(), outs[1].clone(), outs[2].clone()],
        t_cc,
        t_mpi,
    )
}

#[test]
fn all_three_paths_agree() {
    for (shape, nprocs, cb) in [
        (Shape::new(vec![8, 64]), 4, 256u64),
        (Shape::new(vec![6, 5, 16]), 6, 1024),
        (Shape::new(vec![8, 128]), 8, 64),
    ] {
        let ([cc, mpi, ind], _, _) = tri_run(&shape, nprocs, cb);
        for k in 0..cc.len() {
            assert_close(cc[k], mpi[k], "cc vs baseline");
            assert_close(cc[k], ind[k], "cc vs independent");
        }
    }
}

#[test]
fn cc_no_slower_than_baseline_with_real_compute() {
    // With any nontrivial compute cost, pipelined CC must not lose to the
    // strictly-sequential baseline (deterministic OST booking makes this a
    // stable property, not a statistical one).
    let shape = Shape::new(vec![8, 512]);
    let nprocs = 4;
    let (fs, var) = build_var_fs(&shape, 2048, 4, 8);
    let mut model = test_model(2, 2);
    model.cpu.map_cost_per_byte = 1.0 / model.disk.ost_bandwidth;
    let run = |blocking: bool, fs: &std::sync::Arc<cc_pfs::Pfs>| {
        let world = World::new(nprocs, model.clone());
        let var = &var;
        let fs2 = fs;
        let ends = world.run(move |comm| {
            let file = fs2.open("t.nc").expect("exists");
            let io = ObjectIo::new(vec![2 * comm.rank() as u64, 0], vec![2, 512])
                .blocking(blocking)
                .hints(Hints {
                    cb_buffer_size: 1024,
                    ..Hints::default()
                });
            object_get_vara(comm, fs2, &file, var, &io, &SumKernel)
                .report
                .end
        });
        ends.into_iter().max().expect("nonempty")
    };
    let t_cc = run(false, &fs);
    let (fs2, _) = build_var_fs(&shape, 2048, 4, 8);
    let t_mpi = run(true, &fs2);
    assert!(
        t_cc <= t_mpi,
        "CC {t_cc} should not exceed baseline {t_mpi}"
    );
}

#[test]
fn metadata_shrinks_then_flattens_with_buffer_size() {
    // Fig. 12's invariant as a test: metadata entries are non-increasing
    // in the collective buffer size.
    let workload = ClimateWorkload::interleaved_3d(4, 8, 4, 64, 4096, 4);
    let mut prev = u64::MAX;
    for cb in [256u64, 1024, 4096, 1 << 20] {
        let fs = workload.build_fs(8, cc_model::DiskModel::lustre_like());
        let world = World::new(4, test_model(1, 4));
        let fs = &fs;
        let workload = &workload;
        let entries: u64 = world
            .run(move |comm| {
                let file = fs.open(ClimateWorkload::FILE).expect("created");
                let slab = workload.slab(comm.rank());
                let io = ObjectIo::new(slab.start().to_vec(), slab.count().to_vec()).hints(
                    Hints {
                        cb_buffer_size: cb,
                        ..Hints::default()
                    },
                );
                object_get_vara(comm, fs, &file, workload.var(), &io, &SumKernel)
                    .report
                    .metadata_entries
            })
            .iter()
            .sum();
        assert!(
            entries <= prev,
            "entries must not grow with buffer size: {entries} > {prev} at cb={cb}"
        );
        prev = entries;
    }
}

#[test]
fn climate_workload_through_cc_matches_its_oracle() {
    let workload = ClimateWorkload::interleaved_3d(4, 6, 2, 32, 1024, 4);
    let fs = workload.build_fs(8, cc_model::DiskModel::lustre_like());
    let world = World::new(4, test_model(2, 2));
    let fs = &fs;
    let workload_ref = &workload;
    let results = world.run(move |comm| {
        let file = fs.open(ClimateWorkload::FILE).expect("created");
        let slab = workload_ref.slab(comm.rank());
        let io = ObjectIo::new(slab.start().to_vec(), slab.count().to_vec())
            .reduce(ReduceMode::AllToAll { root: 0 });
        object_get_vara(comm, fs, &file, workload_ref.var(), &io, &SumKernel)
    });
    for (r, o) in results.iter().enumerate() {
        assert_close(
            o.my_result.as_ref().expect("own result")[0],
            workload.oracle_sum(r),
            &format!("rank {r} partial"),
        );
    }
}

#[test]
fn independent_mode_ignores_collective_noise() {
    // Independent mode with a single rank equals a serial computation.
    let shape = Shape::new(vec![2, 64]);
    let (fs, var) = build_var_fs(&shape, 512, 2, 4);
    let world = World::new(1, test_model(1, 1));
    let fs = &fs;
    let var = &var;
    let results = world.run(move |comm| {
        let io = ObjectIo::new(vec![0, 0], vec![2, 64]).mode(IoMode::Independent);
        let file = fs.open("t.nc").expect("exists");
        object_get_vara(comm, fs, &file, var, &io, &SumKernel)
    });
    let expect: f64 = (0..128).map(test_value).sum();
    assert_close(results[0].global.as_ref().unwrap()[0], expect, "serial");
}
