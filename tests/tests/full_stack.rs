//! End-to-end correctness of the full stack: synthetic PFS -> two-phase
//! engine -> logical map -> kernels -> reduce, against direct oracles.

use cc_array::{Hyperslab, Shape};
use cc_core::{
    object_get_vara, CountKernel, MapKernel, MaxKernel, MeanKernel, MinLocKernel, ObjectIo,
    ReduceMode, SumKernel,
};
use cc_integration::{assert_close, build_var_fs, oracle_min_loc, oracle_sum, test_model, test_value};
use cc_mpi::World;
use cc_mpiio::Hints;

/// Runs `nprocs` ranks over row-block selections of `shape` with `kernel`
/// and returns the root's global result.
fn run_global(
    nprocs: usize,
    nodes: usize,
    shape: &Shape,
    kernel: &dyn MapKernel,
    reduce: ReduceMode,
    cb: u64,
) -> Vec<f64> {
    let rows = shape.dims()[0];
    assert_eq!(rows % nprocs as u64, 0);
    let per = rows / nprocs as u64;
    let (fs, var) = build_var_fs(shape, 4096, 4, 8);
    let world = World::new(nprocs, test_model(nodes, nprocs / nodes));
    let fs = &fs;
    let var = &var;
    let results = world.run(move |comm| {
        let file = fs.open("t.nc").expect("exists");
        let mut start = vec![0; shape.rank()];
        let mut count = shape.dims().to_vec();
        start[0] = comm.rank() as u64 * per;
        count[0] = per;
        let io = ObjectIo::new(start, count)
            .hints(Hints {
                cb_buffer_size: cb,
                ..Hints::default()
            })
            .reduce(reduce);
        object_get_vara(comm, fs, &file, var, &io, kernel)
    });
    results
        .into_iter()
        .find_map(|o| o.global)
        .expect("some rank holds the global result")
}

#[test]
fn sum_across_shapes_and_buffer_sizes() {
    for shape in [
        Shape::new(vec![8, 40]),
        Shape::new(vec![4, 6, 10]),
        Shape::new(vec![8, 3, 5, 7]),
    ] {
        let expect: f64 = (0..shape.num_elements()).map(test_value).sum();
        for cb in [128u64, 1024, 1 << 20] {
            let got = run_global(
                4,
                2,
                &shape,
                &SumKernel,
                ReduceMode::AllToOne { root: 0 },
                cb,
            );
            assert_close(got[0], expect, &format!("sum {:?} cb={cb}", shape.dims()));
        }
    }
}

#[test]
fn every_reduce_root_works() {
    let shape = Shape::new(vec![6, 30]);
    let expect: f64 = (0..180).map(test_value).sum();
    for root in 0..6 {
        for reduce in [ReduceMode::AllToOne { root }, ReduceMode::AllToAll { root }] {
            let got = run_global(6, 2, &shape, &SumKernel, reduce, 256);
            assert_close(got[0], expect, &format!("root {root} {reduce:?}"));
        }
    }
}

#[test]
fn minloc_and_count_and_mean_and_max() {
    let shape = Shape::new(vec![8, 25]);
    let n = shape.num_elements();
    let slab = Hyperslab::whole(&shape);

    let minloc = run_global(
        4,
        1,
        &shape,
        &MinLocKernel,
        ReduceMode::AllToOne { root: 0 },
        512,
    );
    let (ev, ei) = oracle_min_loc(&shape, &slab);
    assert_eq!(minloc[0], ev);
    assert_eq!(minloc[1], ei as f64);

    let count = run_global(4, 1, &shape, &CountKernel, ReduceMode::AllToOne { root: 0 }, 512);
    assert_eq!(count[0], n as f64);

    let mean = run_global(4, 1, &shape, &MeanKernel, ReduceMode::AllToAll { root: 2 }, 512);
    assert_close(
        mean[0],
        oracle_sum(&shape, &slab) / n as f64,
        "mean",
    );

    let max = run_global(4, 1, &shape, &MaxKernel, ReduceMode::AllToOne { root: 0 }, 512);
    let expect_max = (0..n).map(test_value).fold(f64::NEG_INFINITY, f64::max);
    assert_eq!(max[0], expect_max);
}

#[test]
fn uneven_rank_to_node_mappings() {
    // 12 ranks over 1, 2, 3, 4 nodes: aggregator counts change, data must not.
    let shape = Shape::new(vec![12, 16]);
    let expect: f64 = (0..192).map(test_value).sum();
    for nodes in [1, 2, 3, 4] {
        let got = run_global(
            12,
            nodes,
            &shape,
            &SumKernel,
            ReduceMode::AllToOne { root: 0 },
            128,
        );
        assert_close(got[0], expect, &format!("{nodes} nodes"));
    }
}

#[test]
fn single_rank_world_still_works() {
    let shape = Shape::new(vec![3, 17]);
    let expect: f64 = (0..51).map(test_value).sum();
    let got = run_global(1, 1, &shape, &SumKernel, ReduceMode::AllToOne { root: 0 }, 64);
    assert_close(got[0], expect, "single rank");
}

#[test]
fn repeated_object_io_in_one_job() {
    // Multiple collective-computing calls back to back, with different
    // kernels, inside one SPMD job: tags and clocks must stay coherent.
    let shape = Shape::new(vec![4, 32]);
    let (fs, var) = build_var_fs(&shape, 1024, 2, 4);
    let world = World::new(4, test_model(2, 2));
    let fs = &fs;
    let var = &var;
    let shape_ref = &shape;
    let results = world.run(move |comm| {
        let file = fs.open("t.nc").expect("exists");
        let io = ObjectIo::new(vec![comm.rank() as u64, 0], vec![1, 32]);
        let a = object_get_vara(comm, fs, &file, var, &io, &SumKernel);
        let b = object_get_vara(comm, fs, &file, var, &io, &MaxKernel);
        let c = object_get_vara(comm, fs, &file, var, &io, &SumKernel);
        assert!(b.report.start >= a.report.end);
        assert!(c.report.start >= b.report.end);
        (a.global, b.global, c.global, comm.clock())
    });
    let n = shape_ref.num_elements();
    let expect_sum: f64 = (0..n).map(test_value).sum();
    let expect_max = (0..n).map(test_value).fold(f64::NEG_INFINITY, f64::max);
    let (a, b, c, _) = &results[0];
    assert_close(a.as_ref().unwrap()[0], expect_sum, "first sum");
    assert_eq!(b.as_ref().unwrap()[0], expect_max);
    assert_close(c.as_ref().unwrap()[0], expect_sum, "second sum");
}

#[test]
fn overlapping_requests_across_ranks() {
    // All ranks read the *same* full selection; every rank's partial must
    // equal the full reduction, and the global (over identical partials)
    // must equal it too for idempotent kernels like max.
    let shape = Shape::new(vec![4, 20]);
    let (fs, var) = build_var_fs(&shape, 512, 2, 4);
    let world = World::new(3, test_model(1, 3));
    let fs = &fs;
    let var = &var;
    let results = world.run(move |comm| {
        let file = fs.open("t.nc").expect("exists");
        let io = ObjectIo::new(vec![0, 0], vec![4, 20])
            .reduce(ReduceMode::AllToAll { root: 0 });
        object_get_vara(comm, fs, &file, var, &io, &MaxKernel)
    });
    let expect = (0..80).map(test_value).fold(f64::NEG_INFINITY, f64::max);
    for o in &results {
        assert_eq!(o.my_result.as_ref().unwrap()[0], expect);
    }
    assert_eq!(results[0].global.as_ref().unwrap()[0], expect);
}
